//! Property test pinning the tentpole invariant of the compiled matcher:
//! a [`ReactiveEngine`] dispatching through the shared alpha
//! discrimination network ([`MatchMode::Compiled`], the default) produces
//! **byte-identical output in identical order** to the historical
//! label-indexed interpreted dispatch ([`MatchMode::Interpreted`]) — for
//! random rule sets spanning every trigger form the language has (atomic,
//! attribute equality, hoisted `WHERE` guards, conjunction, sequence,
//! absence, wildcard, DETECT, `count`, sliding aggregates) and random
//! event streams.
//!
//! Single-engine runs are compared as exact sequences (same messages, same
//! order — the network may only *skip* non-matching candidates, never
//! reorder or change an answer). The threaded sharded executor is compared
//! as a sorted multiset against the interpreted single engine, closing the
//! chain compiled-threaded ≡ interpreted-single.

use proptest::prelude::*;

use reweb_core::{InMessage, MatchMode, MessageMeta, ReactiveEngine, ShardedEngine};
use reweb_term::{parse_term, Term, Timestamp};

const LABELS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

/// Materialize rule-program fragment `i` from a kind code and two label
/// picks. Extends the shard-equivalence fragment pool with the trigger
/// forms the alpha network actually discriminates on: attribute equality,
/// attribute-variable guards, child text, counting, and aggregation.
fn fragment(i: usize, kind: u8, a: usize, b: usize) -> String {
    let la = LABELS[a % LABELS.len()];
    let lb = LABELS[b % LABELS.len()];
    match kind % 13 {
        // atomic, label-indexed
        0 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} DO SEND saw{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // conjunction with a window
        1 => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 2m
               DO SEND pair{i}{{a[var X], b[var Y]}} TO "http://sink/{i}" END"#
        ),
        // temporal order
        2 => format!(
            r#"RULE r{i} ON seq({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 90s
               DO SEND seq{i}{{a[var X]}} TO "http://sink/{i}" END"#
        ),
        // absence with a deadline (never alpha-skipped)
        3 => format!(
            r#"RULE r{i} ON absence({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var X]]}}}}, 30s)
               DO SEND missing{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // wildcard (routes through the network's any-label bucket)
        4 => format!(
            r#"RULE r{i} ON *{{{{v[[var X]]}}}} DO SEND any{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // event-level WHERE on a child-bound var (not hoistable)
        5 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} where var X >= 5
               DO SEND big{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // ECAA branching over a store read
        6 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}}
               IF in "http://data/items" item{{{{v[[var X]]}}}}
               THEN SEND hit{i}{{v[var X]}} TO "http://sink/{i}"
               ELSE SEND miss{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // DETECT + consumer of the derived event
        7 => format!(
            r#"DETECT d{i}{{v[var X]}} ON {la}{{{{v[[var X]]}}}} where var X >= 3 END
               RULE r{i} ON d{i}{{{{v[[var X]]}}}} DO SEND derived{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // stateful wildcard conjunct
        8 => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, *{{{{tag[[var Y]]}}}}) within 2m
               DO SEND wild{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // attribute equality — the network's value-discrimination layer
        9 => format!(
            r#"RULE r{i} ON {la}{{{{@route="r{}", v[[var X]]}}}}
               DO SEND route{i}{{v[var X]}} TO "http://sink/{i}" END"#,
            b % 3
        ),
        // attribute variable + hoisted WHERE guard
        10 => format!(
            r#"RULE r{i} ON {la}{{{{@lvl=var L}}}} where var L >= {}
               DO SEND lvl{i}{{l[var L]}} TO "http://sink/{i}" END"#,
            b % 7
        ),
        // counting accumulation (buffer contents output-visible: no guards)
        11 => format!(
            r#"RULE r{i} ON count(3, {la}{{{{v[[var X]]}}}}, 2m)
               DO SEND cnt{i}{{k["c"]}} TO "http://sink/{i}" END"#
        ),
        // sliding aggregate
        _ => format!(
            r#"RULE r{i} ON avg(var P, 3, {la}{{{{v[[var P]]}}}}) as var A
               DO SEND agg{i}{{a[var A]}} TO "http://sink/{i}" END"#
        ),
    }
}

/// Every event carries the attributes the attr-eq and guard fragments
/// dispatch on, plus the `v[...]` child the rest bind.
fn event_payload(label_idx: usize, v: u64) -> Term {
    let label = if label_idx < LABELS.len() {
        LABELS[label_idx]
    } else if label_idx == LABELS.len() {
        "noise"
    } else {
        "static"
    };
    parse_term(&format!(
        "{label}{{@route=\"r{}\", @lvl=\"{v}\", v[\"{v}\"]}}",
        v % 3
    ))
    .unwrap()
}

fn seed_store() -> Term {
    parse_term(
        "items[item{v[\"0\"]}, item{v[\"1\"]}, item{v[\"2\"]}, item{v[\"3\"]}, item{v[\"4\"]}]",
    )
    .unwrap()
}

/// Run the stream through a single engine in the given match mode,
/// keeping output order.
fn run_mode(
    program: &str,
    stream: &[InMessage],
    mode: MatchMode,
) -> (Vec<(String, String)>, reweb_core::EngineMetrics) {
    let mut e = ReactiveEngine::new("http://node");
    e.set_match_mode(mode);
    e.qe.store.put("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let mut out = Vec::new();
    for m in stream {
        out.extend(e.receive(m.payload.clone(), &m.meta, m.at));
    }
    (
        out.into_iter()
            .map(|o| (o.to, o.payload.to_string()))
            .collect(),
        e.metrics,
    )
}

/// Run the same stream as one batch through a thread-per-shard engine
/// (which dispatches compiled, the default mode).
fn run_threaded(program: &str, stream: &[InMessage], shards: usize) -> Vec<(String, String)> {
    let mut e = ShardedEngine::new_parallel("http://node", shards);
    e.put_resource("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let out = e.try_receive_batch(stream).expect("no worker failure");
    out.into_iter()
        .map(|o| (o.to, o.payload.to_string()))
        .collect()
}

fn build_program(rules: &[(u8, usize, usize)]) -> String {
    rules
        .iter()
        .enumerate()
        .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
        .collect::<Vec<_>>()
        .join("\n")
}

fn build_stream(stream: &[(usize, u64, u64)]) -> Vec<InMessage> {
    let meta = MessageMeta::from_uri("http://peer");
    let mut at = 0u64;
    stream
        .iter()
        .map(|&(l, v, dt)| {
            at += dt;
            InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Compiled dispatch ≡ interpreted dispatch, as exact sequences, and
    /// compiled-threaded ≡ interpreted-single as sorted multisets. Also
    /// pins the direction of the optimization: the network never hands
    /// dispatch *more* candidates than the label index does.
    #[test]
    fn compiled_matcher_is_equivalent_to_interpreted(
        rules in proptest::collection::vec((0..13u8, 0..6usize, 0..6usize), 1..6),
        stream in proptest::collection::vec((0..8usize, 0..10u64, 1..20_000u64), 4..40),
    ) {
        let program = build_program(&rules);
        let msgs = build_stream(&stream);

        let (compiled_out, cm) = run_mode(&program, &msgs, MatchMode::Compiled);
        let (interp_out, im) = run_mode(&program, &msgs, MatchMode::Interpreted);
        prop_assert_eq!(
            &compiled_out, &interp_out,
            "compiled and interpreted dispatch diverged for program:\n{}", program
        );
        prop_assert_eq!(cm.rules_fired, im.rules_fired);
        prop_assert_eq!(cm.fires_by_rule, im.fires_by_rule);
        prop_assert!(
            cm.rules_considered <= im.rules_considered,
            "network considered more candidates ({}) than the label index ({})",
            cm.rules_considered, im.rules_considered
        );

        let mut interp_sorted = interp_out;
        interp_sorted.sort();
        for shards in [2usize, 4] {
            let mut threaded = run_threaded(&program, &msgs, shards);
            threaded.sort();
            prop_assert_eq!(
                &interp_sorted, &threaded,
                "threaded compiled outputs diverged at {} shards for program:\n{}",
                shards, program
            );
        }
    }
}

/// Installing a rule mid-stream extends the live network — no rebuild, and
/// the late rule sees exactly the suffix, in both modes, byte-identically.
#[test]
fn dynamic_install_extends_the_network_mid_stream() {
    let meta = MessageMeta::from_uri("http://peer");
    let run = |mode: MatchMode| {
        let mut e = ReactiveEngine::new("http://node");
        e.set_match_mode(mode);
        e.install_program(
            r#"RULE early ON alpha{{@route="r1", v[[var X]]}}
               DO SEND early{v[var X]} TO "http://sink/e" END"#,
        )
        .unwrap();
        let mut out = Vec::new();
        for k in 0..20u64 {
            if k == 10 {
                // Mid-stream install: from here on, `late` competes for the
                // same events through the already-live index.
                e.install_program(
                    r#"RULE late ON alpha{{@route="r1", v[[var X]]}}
                       DO SEND late{v[var X]} TO "http://sink/l" END"#,
                )
                .unwrap();
            }
            out.extend(e.receive(event_payload(0, k % 4), &meta, Timestamp(1_000 + k * 1_000)));
        }
        let fired = e.metrics.fires_by_rule.clone();
        let seq: Vec<(String, String)> = out
            .into_iter()
            .map(|o| (o.to, o.payload.to_string()))
            .collect();
        (seq, fired)
    };

    let (compiled, cf) = run(MatchMode::Compiled);
    let (interp, inf) = run(MatchMode::Interpreted);
    assert_eq!(compiled, interp);
    assert_eq!(cf, inf);
    // `@route="r1"` holds for v % 3 == 1, i.e. k % 4 ∈ {1}∪... — the early
    // rule saw the whole stream, the late rule only the suffix.
    let early = cf.get("early").copied().unwrap_or(0);
    let late = cf.get("late").copied().unwrap_or(0);
    assert!(early > late && late > 0, "early={early} late={late}");
}

/// Switching modes mid-stream rebuilds the index from stored
/// registrations without disturbing partial-match state.
#[test]
fn mode_switch_mid_stream_is_seamless() {
    let program = r#"
        RULE pair ON and(alpha{{v[[var X]]}}, beta{{v[[var X]]}}) within 2m
          DO SEND pair{v[var X]} TO "http://sink" END
    "#;
    let meta = MessageMeta::from_uri("http://peer");
    let run = |switch: bool| {
        let mut e = ReactiveEngine::new("http://node");
        e.install_program(program).unwrap();
        let mut out = Vec::new();
        // alpha halves arrive first...
        for k in 0..6u64 {
            out.extend(e.receive(event_payload(0, k), &meta, Timestamp(1_000 + k)));
        }
        if switch {
            // ...the index is torn down and rebuilt mid-join...
            e.set_match_mode(MatchMode::Interpreted);
            assert_eq!(e.match_mode(), MatchMode::Interpreted);
        }
        // ...and the beta halves still complete every pair.
        for k in 0..6u64 {
            out.extend(e.receive(event_payload(1, k), &meta, Timestamp(2_000 + k)));
        }
        out.into_iter()
            .map(|o| (o.to, o.payload.to_string()))
            .collect::<Vec<_>>()
    };
    let stable = run(false);
    let switched = run(true);
    assert_eq!(stable, switched);
    assert_eq!(stable.len(), 6);
}
