//! Property test: the rule language round-trips — parse(display(x)) == x
//! for randomly assembled programs. This is the invariant meta-programming
//! (Thesis 11) stands on: a rule that cannot survive its own printed form
//! cannot travel as data.

use proptest::prelude::*;

use reweb_core::meta::{ruleset_from_term, ruleset_to_term};
use reweb_core::{parse_program, parse_rule, Branch, EcaRule, RuleSet};
use reweb_events::parse_event_query;
use reweb_query::parser::{parse_condition, parse_construct_term};
use reweb_update::{Action, ProcedureDef};

// ----- generators assembling real ASTs from a fragment pool ----------------

fn arb_event_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ping".to_string()),
        Just("order{{id[[var O]], total[[var T]]}}".to_string()),
        Just("and(a{{v[[var X]]}}, b{{v[[var X]]}}) within 5m".to_string()),
        Just("seq(a, b, c) within 1h".to_string()),
        Just("or(a, b)".to_string()),
        Just("absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)".to_string()),
        Just("count(3, outage, 1h)".to_string()),
        Just("avg(var P, 5, stock{{price[[var P]]}}) as var A".to_string()),
        Just("a{{v[[var X]]}} where var X >= 2 and var X < 100".to_string()),
    ]
}

fn arb_condition() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("true".to_string()),
        Just("in \"http://r\" customer{{id[[var O]]}}".to_string()),
        Just("not in \"http://r\" blocked[[var O]]".to_string()),
        Just("in \"http://r\" c{{v[[var V]]}} and var V >= 10".to_string()),
        Just("var T >= var A * 1.05".to_string()),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![
        Just("NOOP".to_string()),
        Just("FAIL \"boom\"".to_string()),
        Just("LOG entry[var O]".to_string()),
        Just("SEND m{v[var O]} TO \"http://x\"".to_string()),
        Just("PERSIST p[var O] IN \"http://y\"".to_string()),
        Just("CALL f(var O, \"lit\")".to_string()),
        Just("UPDATE INSERT e[\"1\"] INTO ledger[[]] IN \"http://l\"".to_string()),
        Just("UPDATE DELETE item{{sku[[var K]]}} IN \"http://s\"".to_string()),
        Just("UPDATE REPLACE q BY r[\"2\"] IN \"http://s\"".to_string()),
        Just("UPDATE SETATTR flag = \"yes\" ON item IN \"http://s\"".to_string()),
    ]
    .prop_map(|s| reweb_core::parse_action(&s).expect("fragment parses"));
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Action::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Action::Alt),
            (arb_condition(), inner.clone(), proptest::option::of(inner)).prop_map(|(c, t, e)| {
                Action::If {
                    cond: parse_condition(&c).unwrap(),
                    then: Box::new(t),
                    else_: e.map(Box::new),
                }
            }),
        ]
    })
}

fn arb_rule(idx: usize) -> impl Strategy<Value = EcaRule> {
    (
        arb_event_query(),
        proptest::collection::vec((arb_condition(), arb_action()), 1..3),
        proptest::option::of(arb_action()),
    )
        .prop_map(move |(on, conds, else_)| {
            let mut branches: Vec<Branch> = conds
                .into_iter()
                .map(|(c, a)| Branch {
                    cond: parse_condition(&c).unwrap(),
                    action: a,
                })
                .collect();
            if let Some(e) = else_ {
                branches.push(Branch {
                    cond: reweb_query::Condition::always_true(),
                    action: e,
                });
            }
            EcaRule {
                name: format!("r{idx}"),
                on: parse_event_query(&on).unwrap(),
                branches,
            }
        })
}

fn arb_ruleset() -> impl Strategy<Value = RuleSet> {
    (
        proptest::collection::vec(arb_rule(0), 0..3),
        proptest::option::of(arb_action()),
        any::<bool>(),
    )
        .prop_map(|(mut rules, proc_body, with_view)| {
            for (i, r) in rules.iter_mut().enumerate() {
                r.name = format!("r{i}");
            }
            let mut set = RuleSet::new("generated");
            set.rules = rules;
            if let Some(body) = proc_body {
                set.procedures
                    .push(ProcedureDef::new("p0", vec!["A".into(), "B".into()], body));
            }
            if with_view {
                set.views.push((
                    "view://v".to_string(),
                    reweb_query::DeductiveRule::new(
                        parse_construct_term("out[var X]").unwrap(),
                        parse_condition("in \"http://r\" d{{v[[var X]]}}").unwrap(),
                    ),
                ));
            }
            set
        })
}

// ----- properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rules survive their printed textual form.
    #[test]
    fn rule_text_roundtrip(r in arb_rule(0)) {
        let printed = r.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(r, reparsed, "printed:\n{}", printed);
    }

    /// Whole rule sets survive their printed form.
    #[test]
    fn program_text_roundtrip(s in arb_ruleset()) {
        let printed = s.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(s, reparsed, "printed:\n{}", printed);
    }

    /// Rule sets survive reification to terms and back (the actual wire
    /// format of Thesis 11).
    #[test]
    fn program_term_roundtrip(s in arb_ruleset()) {
        let term = ruleset_to_term(&s);
        let back = ruleset_from_term(&term)
            .unwrap_or_else(|e| panic!("reflect failed: {e}\n{term}"));
        prop_assert_eq!(s, back);
    }

    /// Reification composes with the text form: term → ruleset → text →
    /// ruleset is still the identity.
    #[test]
    fn term_then_text_roundtrip(s in arb_ruleset()) {
        let term = ruleset_to_term(&s);
        let back = ruleset_from_term(&term).unwrap();
        let printed = back.to_string();
        let again = parse_program(&printed).unwrap();
        prop_assert_eq!(s, again);
    }
}
