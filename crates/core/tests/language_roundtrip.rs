//! Property test: the rule language round-trips — parse(display(x)) == x
//! for randomly assembled programs. This is the invariant meta-programming
//! (Thesis 11) stands on: a rule that cannot survive its own printed form
//! cannot travel as data.

use proptest::prelude::*;

use reweb_core::meta::{ruleset_from_term, ruleset_to_term};
use reweb_core::{parse_program, parse_rule, Branch, EcaRule, RuleSet};
use reweb_events::parse_event_query;
use reweb_query::parser::{parse_condition, parse_construct_term};
use reweb_update::{Action, ProcedureDef};

// ----- generators assembling real ASTs from a fragment pool ----------------

fn arb_event_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ping".to_string()),
        Just("order{{id[[var O]], total[[var T]]}}".to_string()),
        Just("and(a{{v[[var X]]}}, b{{v[[var X]]}}) within 5m".to_string()),
        Just("seq(a, b, c) within 1h".to_string()),
        Just("or(a, b)".to_string()),
        Just("absence(cancel{{no[[var N]]}}, rebooked{{no[[var N]]}}, 2h)".to_string()),
        Just("count(3, outage, 1h)".to_string()),
        Just("avg(var P, 5, stock{{price[[var P]]}}) as var A".to_string()),
        Just("a{{v[[var X]]}} where var X >= 2 and var X < 100".to_string()),
    ]
}

fn arb_condition() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("true".to_string()),
        Just("in \"http://r\" customer{{id[[var O]]}}".to_string()),
        Just("not in \"http://r\" blocked[[var O]]".to_string()),
        Just("in \"http://r\" c{{v[[var V]]}} and var V >= 10".to_string()),
        Just("var T >= var A * 1.05".to_string()),
    ]
}

fn arb_action() -> impl Strategy<Value = Action> {
    let leaf = prop_oneof![
        Just("NOOP".to_string()),
        Just("FAIL \"boom\"".to_string()),
        Just("LOG entry[var O]".to_string()),
        Just("SEND m{v[var O]} TO \"http://x\"".to_string()),
        Just("PERSIST p[var O] IN \"http://y\"".to_string()),
        Just("CALL f(var O, \"lit\")".to_string()),
        Just("UPDATE INSERT e[\"1\"] INTO ledger[[]] IN \"http://l\"".to_string()),
        Just("UPDATE DELETE item{{sku[[var K]]}} IN \"http://s\"".to_string()),
        Just("UPDATE REPLACE q BY r[\"2\"] IN \"http://s\"".to_string()),
        Just("UPDATE SETATTR flag = \"yes\" ON item IN \"http://s\"".to_string()),
    ]
    .prop_map(|s| reweb_core::parse_action(&s).expect("fragment parses"));
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Action::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Action::Alt),
            (arb_condition(), inner.clone(), proptest::option::of(inner)).prop_map(|(c, t, e)| {
                Action::If {
                    cond: parse_condition(&c).unwrap(),
                    then: Box::new(t),
                    else_: e.map(Box::new),
                }
            }),
        ]
    })
}

fn arb_rule(idx: usize) -> impl Strategy<Value = EcaRule> {
    (
        arb_event_query(),
        proptest::collection::vec((arb_condition(), arb_action()), 1..3),
        proptest::option::of(arb_action()),
    )
        .prop_map(move |(on, conds, else_)| {
            let mut branches: Vec<Branch> = conds
                .into_iter()
                .map(|(c, a)| Branch {
                    cond: parse_condition(&c).unwrap(),
                    action: a,
                })
                .collect();
            if let Some(e) = else_ {
                branches.push(Branch {
                    cond: reweb_query::Condition::always_true(),
                    action: e,
                });
            }
            EcaRule {
                name: format!("r{idx}"),
                on: parse_event_query(&on).unwrap(),
                branches,
            }
        })
}

fn arb_ruleset() -> impl Strategy<Value = RuleSet> {
    (
        proptest::collection::vec(arb_rule(0), 0..3),
        proptest::option::of(arb_action()),
        any::<bool>(),
    )
        .prop_map(|(mut rules, proc_body, with_view)| {
            for (i, r) in rules.iter_mut().enumerate() {
                r.name = format!("r{i}");
            }
            let mut set = RuleSet::new("generated");
            set.rules = rules;
            if let Some(body) = proc_body {
                set.procedures
                    .push(ProcedureDef::new("p0", vec!["A".into(), "B".into()], body));
            }
            if with_view {
                set.views.push((
                    "view://v".to_string(),
                    reweb_query::DeductiveRule::new(
                        parse_construct_term("out[var X]").unwrap(),
                        parse_condition("in \"http://r\" d{{v[[var X]]}}").unwrap(),
                    ),
                ));
            }
            set
        })
}

// ----- properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rules survive their printed textual form.
    #[test]
    fn rule_text_roundtrip(r in arb_rule(0)) {
        let printed = r.to_string();
        let reparsed = parse_rule(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(r, reparsed, "printed:\n{}", printed);
    }

    /// Whole rule sets survive their printed form.
    #[test]
    fn program_text_roundtrip(s in arb_ruleset()) {
        let printed = s.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(s, reparsed, "printed:\n{}", printed);
    }

    /// Rule sets survive reification to terms and back (the actual wire
    /// format of Thesis 11).
    #[test]
    fn program_term_roundtrip(s in arb_ruleset()) {
        let term = ruleset_to_term(&s);
        let back = ruleset_from_term(&term)
            .unwrap_or_else(|e| panic!("reflect failed: {e}\n{term}"));
        prop_assert_eq!(s, back);
    }

    /// Reification composes with the text form: term → ruleset → text →
    /// ruleset is still the identity.
    #[test]
    fn term_then_text_roundtrip(s in arb_ruleset()) {
        let term = ruleset_to_term(&s);
        let back = ruleset_from_term(&term).unwrap();
        let printed = back.to_string();
        let again = parse_program(&printed).unwrap();
        prop_assert_eq!(s, again);
    }

    /// `ReactiveEngine::program_source` reaches a print⇄parse⇄print fixed
    /// point: reprinting an engine built from the reprint changes nothing,
    /// and the reprint reproduces the engine (rule count and all).
    #[test]
    fn program_source_fixed_point(s in arb_ruleset()) {
        use reweb_core::ReactiveEngine;
        let mut e1 = ReactiveEngine::new("http://n1");
        e1.install(&s).unwrap();
        let p1 = e1.program_source();

        let mut e2 = ReactiveEngine::new("http://n2");
        e2.install_program(&p1)
            .unwrap_or_else(|err| panic!("reprint does not reparse: {err}\n{p1}"));
        prop_assert_eq!(e1.rule_count(), e2.rule_count(), "reprint:\n{}", &p1);
        let p2 = e2.program_source();

        let mut e3 = ReactiveEngine::new("http://n3");
        e3.install_program(&p2).unwrap();
        let p3 = e3.program_source();
        prop_assert_eq!(&p2, &p3, "no fixed point; first reprint:\n{}", &p1);
    }
}

/// Deterministic `program_source` coverage for the paths the generator
/// cannot reach: multiple installs (static text, a dynamic
/// `install_rules` message, a bare `add_rule`) accumulate in order, and
/// disabled subtrees are pruned from the reprint because they install
/// nothing.
#[test]
fn program_source_tracks_every_install_path() {
    use reweb_core::meta::install_rules_payload;
    use reweb_core::{MessageMeta, ReactiveEngine};
    use reweb_term::Timestamp;

    let mut e = ReactiveEngine::new("http://node");
    e.install_program(
        r#"
        RULESET shop
          PROCEDURE ship(O) DO SEND s{o[var O]} TO "http://mail" END
          DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
          RULE on_big ON big{{id[[var O]]}} DO CALL ship(var O) END
          RULESET muted
            RULE never ON nope DO NOOP END
          END
        END
        "#,
    )
    .unwrap();

    // Dynamic install via the Thesis-11 message path.
    let carried = parse_program(
        r#"RULE fresh ON newevt{{v[[var X]]}} DO SEND got{v[var X]} TO "http://s" END"#,
    )
    .unwrap();
    e.receive(
        install_rules_payload(&carried),
        &MessageMeta::from_uri("http://peer"),
        Timestamp(1),
    );

    // Bare rule via the API.
    e.add_rule(parse_rule(r#"RULE api ON ping DO SEND pong TO "http://s" END"#).unwrap());

    // A disabled set installs nothing and must not appear.
    e.install(&RuleSet::new("ghost").disabled()).unwrap();

    let src = e.program_source();
    assert!(src.contains("RULESET shop"));
    assert!(src.contains("RULE fresh"));
    assert!(src.contains("RULE api"));
    assert!(!src.contains("ghost"));
    assert!(src.contains("muted"), "enabled nested set is kept");

    // The reprint rebuilds an engine with the same rules, and reprinting
    // that engine is a fixed point.
    let mut e2 = ReactiveEngine::new("http://node2");
    e2.install_program(&src).unwrap();
    assert_eq!(e2.rule_count(), e.rule_count());
    let src2 = e2.program_source();
    let mut e3 = ReactiveEngine::new("http://node3");
    e3.install_program(&src2).unwrap();
    assert_eq!(src2, e3.program_source());
}
