//! Property test pinning the tentpole invariant of the shard layer: a
//! [`ShardedEngine`] processing a batch produces exactly the messages a
//! single [`ReactiveEngine`] produces when fed the same stream event by
//! event — for random rule sets (atomic, composite, absence, wildcard,
//! DETECT, store-reading conditions) and random event streams, at any
//! shard count.
//!
//! Outputs are compared as sorted (to, payload) multisets: the sharded
//! engine merges shard outputs deterministically, but deadline firings
//! and cross-shard interleavings may legally reorder against the single
//! engine's sequence.

use proptest::prelude::*;

use reweb_core::{InMessage, MessageMeta, ReactiveEngine, ShardedEngine};
use reweb_term::{parse_term, Term, Timestamp};

const LABELS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

/// Materialize rule-program fragment `i` from a kind code and two label
/// picks. Fragments only ever SEND (never PERSIST): shards have
/// independent stores, and communicating through the store is the
/// documented exclusion from the equivalence guarantee.
fn fragment(i: usize, kind: u8, a: usize, b: usize) -> String {
    let la = LABELS[a % LABELS.len()];
    let lb = LABELS[b % LABELS.len()];
    match kind % 9 {
        // atomic, label-indexed
        0 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} DO SEND saw{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // conjunction with a window (joins two labels into one group)
        1 => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 2m
               DO SEND pair{i}{{a[var X], b[var Y]}} TO "http://sink/{i}" END"#
        ),
        // temporal order
        2 => format!(
            r#"RULE r{i} ON seq({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 90s
               DO SEND seq{i}{{a[var X]}} TO "http://sink/{i}" END"#
        ),
        // absence with a deadline (exercises cross-shard timer advance)
        3 => format!(
            r#"RULE r{i} ON absence({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var X]]}}}}, 30s)
               DO SEND missing{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // stateless wildcard (replicated to every shard)
        4 => format!(
            r#"RULE r{i} ON *{{{{v[[var X]]}}}} DO SEND any{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // event-level WHERE filter
        5 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} where var X >= 5
               DO SEND big{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // ECAA branching over a store read (store replicated to shards)
        6 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}}
               IF in "http://data/items" item{{{{v[[var X]]}}}}
               THEN SEND hit{i}{{v[var X]}} TO "http://sink/{i}"
               ELSE SEND miss{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // DETECT + consumer of the derived event (colocation invariant)
        7 => format!(
            r#"DETECT d{i}{{v[var X]}} ON {la}{{{{v[[var X]]}}}} where var X >= 3 END
               RULE r{i} ON d{i}{{{{v[[var X]]}}}} DO SEND derived{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        // stateful wildcard (collapses the router; still equivalent)
        _ => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, *{{{{tag[[var Y]]}}}}) within 2m
               DO SEND wild{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
    }
}

fn event_payload(label_idx: usize, v: u64) -> Term {
    let label = if label_idx < LABELS.len() {
        LABELS[label_idx]
    } else if label_idx == LABELS.len() {
        "noise"
    } else {
        "static"
    };
    parse_term(&format!("{label}{{v[\"{v}\"]}}")).unwrap()
}

fn seed_store() -> Term {
    // Items 0..5 exist; events carry 0..10, so ECAA branches both ways.
    parse_term(
        "items[item{v[\"0\"]}, item{v[\"1\"]}, item{v[\"2\"]}, item{v[\"3\"]}, item{v[\"4\"]}]",
    )
    .unwrap()
}

/// Run the stream through a single engine, one receive per message.
fn run_single(program: &str, stream: &[InMessage]) -> (Vec<(String, String)>, u64) {
    let mut e = ReactiveEngine::new("http://node");
    e.qe.store.put("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let mut out = Vec::new();
    for m in stream {
        out.extend(e.receive(m.payload.clone(), &m.meta, m.at));
    }
    (
        out.into_iter()
            .map(|o| (o.to, o.payload.to_string()))
            .collect(),
        e.metrics.rules_fired,
    )
}

/// Run the same stream as one batch through a sharded engine.
fn run_sharded(program: &str, stream: &[InMessage], shards: usize) -> (Vec<(String, String)>, u64) {
    let mut e = ShardedEngine::new("http://node", shards);
    e.put_resource("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let out = e.receive_batch(stream);
    (
        out.into_iter()
            .map(|o| (o.to, o.payload.to_string()))
            .collect(),
        e.metrics().rules_fired,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_engine_is_equivalent_to_single(
        rules in proptest::collection::vec((0..9u8, 0..6usize, 0..6usize), 1..6),
        stream in proptest::collection::vec((0..8usize, 0..10u64, 1..20_000u64), 4..40),
    ) {
        let program: String = rules
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
            .collect::<Vec<_>>()
            .join("\n");

        let meta = MessageMeta::from_uri("http://peer");
        let mut at = 0u64;
        let msgs: Vec<InMessage> = stream
            .iter()
            .map(|&(l, v, dt)| {
                at += dt;
                InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
            })
            .collect();

        let (mut single_out, single_fired) = run_single(&program, &msgs);
        single_out.sort();
        for shards in [2usize, 3, 4, 8] {
            let (mut sharded_out, sharded_fired) = run_sharded(&program, &msgs, shards);
            sharded_out.sort();
            prop_assert_eq!(
                &single_out, &sharded_out,
                "outputs diverged at {} shards for program:\n{}", shards, program
            );
            prop_assert_eq!(
                single_fired, sharded_fired,
                "fire counts diverged at {} shards for program:\n{}", shards, program
            );
        }
    }
}

/// Run the same stream as one batch through a *parallel* (thread-per-
/// shard) sharded engine, keeping the output sequence unsorted: the
/// thread backend promises the serial backend's exact append order, not
/// just the same multiset.
fn run_parallel_seq(program: &str, stream: &[InMessage], shards: usize) -> Vec<(String, String)> {
    let mut e = ShardedEngine::new_parallel("http://node", shards);
    e.put_resource("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let out = e.try_receive_batch(stream).expect("no worker failure");
    out.into_iter()
        .map(|o| (o.to, o.payload.to_string()))
        .collect()
}

/// Same as [`run_parallel_seq`] but serial — the reference sequence.
fn run_serial_seq(program: &str, stream: &[InMessage], shards: usize) -> Vec<(String, String)> {
    let mut e = ShardedEngine::new("http://node", shards);
    e.put_resource("http://data/items", seed_store());
    e.install_program(program).expect("program installs");
    let out = e.receive_batch(stream);
    out.into_iter()
        .map(|o| (o.to, o.payload.to_string()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The thread-per-shard executor emits *the same sequence* as the
    /// serial executor — not merely the same multiset — over the same
    /// random rule sets and streams the serial/single proptest uses.
    /// Together with `sharded_engine_is_equivalent_to_single` this pins
    /// parallel ≡ serial ≡ single.
    #[test]
    fn parallel_executor_matches_serial_order(
        rules in proptest::collection::vec((0..9u8, 0..6usize, 0..6usize), 1..6),
        stream in proptest::collection::vec((0..8usize, 0..10u64, 1..20_000u64), 4..40),
    ) {
        let program: String = rules
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
            .collect::<Vec<_>>()
            .join("\n");

        let meta = MessageMeta::from_uri("http://peer");
        let mut at = 0u64;
        let msgs: Vec<InMessage> = stream
            .iter()
            .map(|&(l, v, dt)| {
                at += dt;
                InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
            })
            .collect();

        for shards in [2usize, 3, 8] {
            let serial = run_serial_seq(&program, &msgs, shards);
            let parallel = run_parallel_seq(&program, &msgs, shards);
            prop_assert_eq!(
                &serial, &parallel,
                "parallel order diverged at {} shards for program:\n{}", shards, program
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The 48-case equivalence sweep again, but through the
    /// thread-per-shard executor: workers intern symbols concurrently
    /// (labels and variable names of whatever events land on their
    /// shard), so byte-identical outputs here pin that the process-wide
    /// intern table is race-free — every thread resolves every symbol
    /// to the same string, in the same order.
    #[test]
    fn threaded_executor_is_equivalent_to_single(
        rules in proptest::collection::vec((0..9u8, 0..6usize, 0..6usize), 1..6),
        stream in proptest::collection::vec((0..8usize, 0..10u64, 1..20_000u64), 4..40),
    ) {
        let program: String = rules
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
            .collect::<Vec<_>>()
            .join("\n");

        let meta = MessageMeta::from_uri("http://peer");
        let mut at = 0u64;
        let msgs: Vec<InMessage> = stream
            .iter()
            .map(|&(l, v, dt)| {
                at += dt;
                InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
            })
            .collect();

        let (mut single_out, _) = run_single(&program, &msgs);
        single_out.sort();
        for shards in [2usize, 4, 8] {
            let mut threaded = run_parallel_seq(&program, &msgs, shards);
            threaded.sort();
            prop_assert_eq!(
                &single_out, &threaded,
                "threaded outputs diverged at {} shards for program:\n{}", shards, program
            );
        }
    }
}

/// Deterministic regression: the exact marketplace-style mix from the
/// module docs, at every shard count up to 8.
#[test]
fn marketplace_mix_equivalent_at_all_shard_counts() {
    let program = r#"
        RULE on_payment ON and(order{{id[[var O]], total[[var T]]}},
                               payment{{order[[var O]], amount[[var A]]}}) within 2h
             where var A >= var T
          DO SEND paid{order[var O]} TO "http://ship" END
        DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
        RULE on_big ON big{{id[[var O]]}} DO SEND audit{id[var O]} TO "http://audit" END
        RULE watch ON *{{id[[var I]]}} DO SEND seen{id[var I]} TO "http://log" END
        RULE quiet ON absence(ping{{n[[var N]]}}, pong{{n[[var N]]}}, 10s)
          DO SEND silent{n[var N]} TO "http://ops" END
    "#;
    let meta = MessageMeta::from_uri("http://peer");
    let mut msgs = Vec::new();
    for k in 0..60u64 {
        let at = Timestamp(1_000 + k * 7_000);
        let payload = match k % 5 {
            0 => parse_term(&format!("order{{id[\"o{k}\"], total[\"{}\"]}}", 50 + k * 3)).unwrap(),
            1 => parse_term(&format!(
                "payment{{order[\"o{}\"], amount[\"500\"]}}",
                k - 1
            ))
            .unwrap(),
            2 => parse_term(&format!("ping{{n[\"{k}\"]}}")).unwrap(),
            3 if k % 2 == 1 => parse_term(&format!("pong{{n[\"{}\"]}}", k - 1)).unwrap(),
            _ => parse_term(&format!("noise{{id[\"n{k}\"]}}")).unwrap(),
        };
        msgs.push(InMessage::new(payload, meta.clone(), at));
    }
    let (mut single, single_fired) = run_single(program, &msgs);
    single.sort();
    assert!(
        !single.is_empty(),
        "workload must actually produce reactions"
    );
    for shards in 1..=8 {
        let (mut sharded, sharded_fired) = run_sharded(program, &msgs, shards);
        sharded.sort();
        assert_eq!(single, sharded, "diverged at {shards} shards");
        assert_eq!(
            single_fired, sharded_fired,
            "fires diverged at {shards} shards"
        );
    }
}
