//! The provenance correctness wall.
//!
//! `explain(reaction)` names a rule and the exact constituent events
//! that made it fire. The wall holds that claim to the strongest
//! standard available: replaying *only* the named events, at their
//! original timestamps, through a fresh engine carrying *only* the
//! named rule, must reproduce the reaction byte-identically. If
//! provenance ever named the wrong events (or missed one), the replay
//! would fire differently — or not at all.

use proptest::prelude::*;
use reweb_core::{MessageMeta, ReactiveEngine};
use reweb_term::{parse_term, Term, Timestamp};

/// The composite shapes the wall exercises. Absence and DETECT stay
/// out: absence firings are caused by *missing* events (no constituent
/// list can replay a lack), and DETECT-derived events carry their
/// deriving rule, not an ingested payload.
#[derive(Clone, Copy, Debug)]
enum Shape {
    Atomic,
    And,
    Or,
    Seq,
}

fn rule_source(shape: Shape) -> String {
    match shape {
        Shape::Atomic => r#"RULE wall ON a{{v[[var X]]}}
            DO SEND out{v[var X]} TO "http://sink" END"#
            .into(),
        Shape::And => r#"RULE wall ON and( a{{v[[var X]]}}, b{{w[[var Y]]}} ) within 2h
            DO SEND out{v[var X], w[var Y]} TO "http://sink" END"#
            .into(),
        Shape::Or => r#"RULE wall ON or( a{{v[[var X]]}}, b{{v[[var X]]}} )
            DO SEND out{v[var X]} TO "http://sink" END"#
            .into(),
        Shape::Seq => r#"RULE wall ON seq( a{{v[[var X]]}}, b{{w[[var Y]]}} ) within 2h
            DO SEND out{v[var X], w[var Y]} TO "http://sink" END"#
            .into(),
    }
}

/// One submitted event: `(label, value)` becomes `<label>{<f>["<v>"]}`
/// where `a` carries field `v` and `b`/`c` carry field `w` — except
/// `b` under Or-shape, which probes the same field as `a`.
fn event_payload(shape: Shape, label: u8, value: u8) -> Term {
    let name = ["a", "b", "c"][label as usize];
    let field = match (shape, name) {
        (_, "a") => "v",
        (Shape::Or, "b") => "v",
        _ => "w",
    };
    parse_term(&format!("{name}{{{field}[\"{value}\"]}}")).unwrap()
}

fn engine_with(rule: &str) -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://wall");
    e.install_program(rule).unwrap();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replaying_explained_constituents_reproduces_the_reaction(
        shape_pick in 0usize..4,
        stream in proptest::collection::vec((0u8..3, 0u8..3), 1..24),
    ) {
        let shape = [Shape::Atomic, Shape::And, Shape::Or, Shape::Seq][shape_pick];
        let rule = rule_source(shape);
        let meta = MessageMeta::from_uri("http://client");

        // Original run, with provenance recording enabled. Events are
        // a minute apart, comfortably inside the 2h windows; event id
        // i+1 is stream[i] (ids are assigned 1-based, in ingestion
        // order).
        let mut engine = engine_with(&rule);
        engine.obs().enable();
        let mut submitted: Vec<(Term, Timestamp)> = Vec::new();
        let mut reactions = Vec::new();
        for (i, &(label, value)) in stream.iter().enumerate() {
            let payload = event_payload(shape, label, value);
            let at = Timestamp(1_000 + i as u64 * 60_000);
            submitted.push((payload.clone(), at));
            reactions.extend(engine.receive(payload, &meta, at));
        }

        for reaction in &reactions {
            let p = reaction.provenance.as_ref().expect("obs enabled: every reaction is explained");
            prop_assert_eq!(p.rule.as_str(), "wall");
            prop_assert!(!p.events.is_empty(), "a firing names its constituents");
            prop_assert!(p.trace != 0, "traced run: provenance carries the trace id");

            // The replay: a fresh engine, only the named rule, only
            // the named events, at their original timestamps.
            let mut fresh = engine_with(&rule);
            let mut replayed = Vec::new();
            for &id in &p.events {
                prop_assert!(id >= 1 && id as usize <= submitted.len(),
                    "constituent id {} out of range", id);
                let (payload, at) = &submitted[id as usize - 1];
                replayed.extend(fresh.receive(payload.clone(), &meta, *at));
            }
            let want = (reaction.to.as_str(), reaction.payload.to_string());
            prop_assert!(
                replayed.iter().any(|o| (o.to.as_str(), o.payload.to_string()) == want),
                "replay of {:?} did not reproduce {} -> {}; got {:?}",
                p.events, want.1, want.0,
                replayed.iter().map(|o| o.payload.to_string()).collect::<Vec<_>>()
            );
        }
    }
}

/// Determinism of the explanation itself: the same run explains the
/// same reactions with the same constituent ids.
#[test]
fn explanations_are_deterministic_across_identical_runs() {
    let run = || {
        let mut e = engine_with(&rule_source(Shape::And));
        e.obs().enable();
        let meta = MessageMeta::from_uri("http://client");
        let mut outs = Vec::new();
        outs.extend(e.receive(parse_term("a{v[\"1\"]}").unwrap(), &meta, Timestamp(1_000)));
        outs.extend(e.receive(parse_term("b{w[\"2\"]}").unwrap(), &meta, Timestamp(2_000)));
        outs.into_iter()
            .map(|o| {
                let p = o.provenance.expect("explained");
                (
                    o.to,
                    o.payload.to_string(),
                    p.rule.clone(),
                    p.events.clone(),
                )
            })
            .collect::<Vec<_>>()
    };
    let first = run();
    assert_eq!(first.len(), 1);
    assert_eq!(first[0].3, vec![1, 2], "and() names both constituents");
    assert_eq!(first, run());
}

/// The human-readable surface: `explain()` renders rule, events, and
/// trace.
#[test]
fn explain_renders_rule_and_constituents() {
    let mut e = engine_with(&rule_source(Shape::Atomic));
    e.obs().enable();
    let meta = MessageMeta::from_uri("http://client");
    let outs = e.receive(parse_term("a{v[\"7\"]}").unwrap(), &meta, Timestamp(1));
    assert_eq!(outs.len(), 1);
    let p = outs[0].provenance.as_ref().unwrap();
    let text = p.explain();
    assert!(text.contains("wall"), "explanation names the rule: {text}");
    assert!(text.contains("#1"), "explanation names event ids: {text}");
}
