//! Write-ahead-log records and their on-disk codec.
//!
//! Every input a durable engine accepts is one [`Record`], serialized as
//! the *textual term syntax* (`reweb_term::parse_term` / `Display`) and
//! framed with a length prefix and CRC32 ([`reweb_term::frame`]). Using
//! the term language as the wire format keeps logs portable across
//! processes — interned [`reweb_term::Sym`]s serialize as strings and
//! re-intern on load — and keeps them debuggable: `strings wal.log` is a
//! readable event history.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use reweb_core::{InMessage, MessageMeta};
use reweb_term::frame::{scan_frames, write_frame, TailState};
use reweb_term::{parse_term, Term, Timestamp};

use crate::{PersistError, Result};

/// Magic first record of every WAL, naming the format and the engine
/// shape the log was written for.
pub const WAL_SCHEMA: &str = "reweb-wal/v1";

/// One logged input — everything that can change durable engine state.
#[derive(Clone, Debug, PartialEq)]
pub enum Record {
    /// File header: schema + engine descriptor (shape validation).
    Head {
        /// Always [`WAL_SCHEMA`] for logs this build writes.
        schema: String,
        /// [`crate::Recoverable::descriptor`] of the writing engine.
        engine: String,
    },
    /// A rule program installed through the durable API (or reprinted
    /// from a [`reweb_core::RuleSet`]).
    Install(String),
    /// One ingestion batch (a single `receive` is a batch of one). The
    /// batch boundary itself is semantic for the sharded engine (its
    /// epilogue clock sweep runs per batch), so it is preserved.
    Batch(Vec<InMessage>),
    /// An explicit clock advance.
    Advance(Timestamp),
    /// A direct resource write ([`crate::DurableEngine::put_resource`]).
    Put {
        /// Target resource URI.
        uri: String,
        /// Document stored there.
        doc: Term,
    },
}

pub(crate) fn field_text(t: &Term, name: &str) -> Result<String> {
    t.children()
        .iter()
        .find(|c| c.label() == Some(name))
        .map(|c| c.text_content())
        .ok_or_else(|| PersistError::Corrupt(format!("record field `{name}` missing in {t}")))
}

pub(crate) fn field_u64(t: &Term, name: &str) -> Result<u64> {
    let s = field_text(t, name)?;
    s.parse()
        .map_err(|_| PersistError::Corrupt(format!("record field `{name}` is not a number: {s}")))
}

pub(crate) fn field_child<'a>(t: &'a Term, name: &str) -> Result<&'a Term> {
    let wrapper = t
        .children()
        .iter()
        .find(|c| c.label() == Some(name))
        .ok_or_else(|| PersistError::Corrupt(format!("record field `{name}` missing in {t}")))?;
    wrapper
        .children()
        .first()
        .ok_or_else(|| PersistError::Corrupt(format!("record field `{name}` is empty in {t}")))
}

/// Serialize one in-message (payload + transport meta + arrival time).
pub fn msg_to_term(m: &InMessage) -> Term {
    let mut b = Term::build("m")
        .unordered()
        .field("at", m.at.millis().to_string())
        .field("from", &m.meta.from);
    if let Some(c) = &m.meta.credentials {
        b = b.child(
            Term::build("cred")
                .unordered()
                .field("principal", &c.principal)
                .field("secret", &c.secret)
                .finish(),
        );
    }
    b.child(Term::ordered("payload", vec![m.payload.clone()]))
        .finish()
}

/// Parse one in-message back out of its term form.
pub fn msg_from_term(t: &Term) -> Result<InMessage> {
    if t.label() != Some("m") {
        return Err(PersistError::Corrupt(format!("expected m{{…}}, got {t}")));
    }
    let at = Timestamp(field_u64(t, "at")?);
    let mut meta = MessageMeta::from_uri(field_text(t, "from")?);
    if let Some(cred) = t.children().iter().find(|c| c.label() == Some("cred")) {
        meta = meta.with_credentials(field_text(cred, "principal")?, field_text(cred, "secret")?);
    }
    let payload = field_child(t, "payload")?.clone();
    Ok(InMessage::new(payload, meta, at))
}

impl Record {
    /// Serialize as the textual term syntax (one line, frame payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let term = match self {
            Record::Head { schema, engine } => Term::build("w_head")
                .unordered()
                .field("schema", schema)
                .field("engine", engine)
                .finish(),
            Record::Install(src) => Term::ordered("w_install", vec![Term::text(src.clone())]),
            Record::Batch(msgs) => Term::build("w_batch")
                .children(msgs.iter().map(msg_to_term))
                .finish(),
            Record::Advance(t) => Term::build("w_adv")
                .unordered()
                .field("at", t.millis().to_string())
                .finish(),
            Record::Put { uri, doc } => Term::build("w_put")
                .unordered()
                .field("uri", uri)
                .child(Term::ordered("doc", vec![doc.clone()]))
                .finish(),
        };
        term.to_string().into_bytes()
    }

    /// Parse a frame payload back into a record.
    pub fn from_bytes(bytes: &[u8]) -> Result<Record> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("record is not UTF-8".into()))?;
        let t = parse_term(text)?;
        match t.label() {
            Some("w_head") => Ok(Record::Head {
                schema: field_text(&t, "schema")?,
                engine: field_text(&t, "engine")?,
            }),
            Some("w_install") => {
                let src = t
                    .children()
                    .first()
                    .map(Term::text_content)
                    .ok_or_else(|| PersistError::Corrupt("w_install without source".into()))?;
                Ok(Record::Install(src))
            }
            Some("w_batch") => Ok(Record::Batch(
                t.children()
                    .iter()
                    .map(msg_from_term)
                    .collect::<Result<Vec<_>>>()?,
            )),
            Some("w_adv") => Ok(Record::Advance(Timestamp(field_u64(&t, "at")?))),
            Some("w_put") => Ok(Record::Put {
                uri: field_text(&t, "uri")?,
                doc: field_child(&t, "doc")?.clone(),
            }),
            other => Err(PersistError::Corrupt(format!(
                "unknown WAL record label {other:?}"
            ))),
        }
    }
}

/// Result of opening (and torn-tail-healing) a WAL file.
pub struct WalOpen {
    /// The append handle, positioned at the end of the valid prefix.
    pub wal: Wal,
    /// `(offset, record)` for every valid record, header included.
    pub records: Vec<(u64, Record)>,
    /// Bytes discarded from a torn or corrupt tail.
    pub torn_bytes: u64,
    /// How the scan of the existing file ended.
    pub tail: TailState,
}

/// Append handle over the log file.
pub struct Wal {
    file: File,
    len: u64,
    path: PathBuf,
    /// Set when a failed append could not be rolled back (see
    /// [`Wal::append`]); every later append is refused.
    poisoned: bool,
}

impl Wal {
    /// Open (creating if absent) the log at `path`: scan existing
    /// frames, parse the records of the valid prefix, and truncate any
    /// torn tail so appends continue from a clean boundary. A torn tail
    /// is never an error — it is the expected residue of a crash
    /// mid-write; a record that *parses* wrong (valid frame, bad
    /// content) is corruption and fails.
    pub fn open(path: &Path) -> Result<WalOpen> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let scan = scan_frames(&bytes);
        let torn_bytes = bytes.len() as u64 - scan.valid_len;
        let mut records = Vec::with_capacity(scan.frames.len());
        for (off, payload) in &scan.frames {
            records.push((*off, Record::from_bytes(payload)?));
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if torn_bytes > 0 {
            file.set_len(scan.valid_len)?;
        }
        Ok(WalOpen {
            wal: Wal {
                file,
                len: scan.valid_len,
                path: path.to_path_buf(),
                poisoned: false,
            },
            records,
            torn_bytes,
            tail: scan.tail,
        })
    }

    /// Append one record; returns its offset (stable record id).
    ///
    /// A failed append (partial write — `ENOSPC`, oversized record) must
    /// not leave garbage at the tail: the file is in append mode, so a
    /// *later* successful append would land after the garbage, and on
    /// the next open the frame scan would stop at the garbage and
    /// silently discard every acknowledged record behind it. The file is
    /// therefore truncated back to the last good boundary before the
    /// error is surfaced; if even the truncation fails, further appends
    /// are refused outright.
    pub fn append(&mut self, rec: &Record) -> Result<u64> {
        if self.poisoned {
            return Err(PersistError::Corrupt(format!(
                "write-ahead log {} is poisoned: a failed append could not be \
                 rolled back; refusing to append after the damage",
                self.path.display()
            )));
        }
        let offset = self.len;
        let payload = rec.to_bytes();
        if let Err(e) = write_frame(&mut self.file, &payload) {
            if self.file.set_len(self.len).is_err() {
                self.poisoned = true;
            }
            return Err(e.into());
        }
        self.len += (reweb_term::frame::FRAME_HEADER_LEN + payload.len()) as u64;
        Ok(offset)
    }

    /// Flush the log to stable storage (fsync).
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Bytes of valid log (also the offset the next record will get).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_term::parse_term;

    fn msg(src: &str, at: u64, cred: bool) -> InMessage {
        let mut meta = MessageMeta::from_uri("http://peer");
        if cred {
            meta = meta.with_credentials("franz", "pw\"with\nescapes\\");
        }
        InMessage::new(parse_term(src).unwrap(), meta, Timestamp(at))
    }

    #[test]
    fn records_round_trip_through_text() {
        let records = vec![
            Record::Head {
                schema: WAL_SCHEMA.into(),
                engine: "single".into(),
            },
            Record::Install("RULE r ON ping DO NOOP END\n  -- \"quoted\"".into()),
            Record::Batch(vec![
                msg("order{id[\"o1\"], total[\"50\"]}", 1_000, false),
                msg("payment{order[\"o1\"]}", 2_000, true),
            ]),
            Record::Batch(vec![]),
            Record::Advance(Timestamp(123_456)),
            Record::Put {
                uri: "http://data/items".into(),
                doc: parse_term("items[item{v[\"0\"]}]").unwrap(),
            },
        ];
        for r in &records {
            let back = Record::from_bytes(&r.to_bytes()).unwrap();
            assert_eq!(r, &back, "round-trip failed for {r:?}");
        }
    }

    #[test]
    fn wal_reopens_with_records_and_heals_torn_tail() {
        let dir = std::env::temp_dir().join(format!("reweb-waltest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);

        let mut w = Wal::open(&path).unwrap().wal;
        let r1 = Record::Install("RULE r ON ping DO NOOP END".into());
        let r2 = Record::Advance(Timestamp(5));
        let o1 = w.append(&r1).unwrap();
        let o2 = w.append(&r2).unwrap();
        w.sync().unwrap();
        assert_eq!(o1, 0);
        assert!(o2 > 0);
        let full_len = w.len();
        drop(w);

        // Clean reopen: both records come back at their offsets.
        let open = Wal::open(&path).unwrap();
        assert_eq!(open.records.len(), 2);
        assert_eq!(open.records[0], (o1, r1.clone()));
        assert_eq!(open.records[1], (o2, r2));
        assert_eq!(open.torn_bytes, 0);
        drop(open);

        // Torn tail: cut into the middle of the second record.
        let cut = o2 + 3;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let open = Wal::open(&path).unwrap();
        assert_eq!(open.records.len(), 1, "second record discarded");
        assert_eq!(open.torn_bytes, 3);
        assert_eq!(open.wal.len(), o2, "file truncated back to boundary");
        assert!(std::fs::metadata(&path).unwrap().len() == o2);
        let _ = std::fs::remove_file(&path);
        let _ = full_len;
    }
}
