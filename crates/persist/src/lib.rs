//! # reweb-persist — durable engines: write-ahead log, snapshots, crash recovery
//!
//! Every engine in the lower layers is in-memory: kill the process and
//! rules, resource stores, and in-flight composite-event state vanish.
//! This crate wraps a [`reweb_core::ReactiveEngine`] or
//! [`reweb_core::ShardedEngine`] in a [`DurableEngine`] that makes the
//! node recoverable:
//!
//! * **Write-ahead log.** Every input — `install_program`,
//!   `receive`/`receive_batch` payloads, `advance_time`, `put_resource`
//!   — is appended to `wal.log` as a length- and CRC32-framed record
//!   *before* it is processed ([`wal::Record`]). Records use the
//!   existing textual term syntax, so interned symbols serialize as
//!   strings and re-intern on load: logs are portable across processes.
//! * **Snapshots.** Periodically (or on demand) the durable state —
//!   reprinted rule programs (the install journal), every shard's
//!   resource store, metrics, and action log — is written to
//!   `snapshot.bin` together with a log offset ([`snapshot::Snapshot`]).
//! * **Recovery.** [`DurableEngine::open`] rebuilds the engine: load the
//!   snapshot (if any), then replay the log suffix. A torn or corrupt
//!   final record — the expected residue of a crash mid-write — is
//!   discarded and the file truncated back to the last valid boundary,
//!   never a panic.
//!
//! ## Why a snapshot plus a *warmup* suffix is exact
//!
//! A snapshot at log offset `S` captures rules, stores, metrics, and
//! logs — but not the incremental evaluator's partial matches (windowed
//! joins, pending absences). Those are rebuilt by replay, and the
//! engine's retention bounds make the replay *bounded*: by
//! [`reweb_core::ReactiveEngine::replay_horizon`] (which folds
//! `reweb_events::EventQuery::replay_horizon` over the installed
//! rules), no event older than `clock − B` can still influence a future
//! answer, where `B` is that conservative horizon. So the snapshot also
//! records the offset `H` of the first log record within that horizon,
//! plus each shard's [`reweb_core::ReplayMark`] (clock and event-id
//! counters) as of `H`. Recovery then:
//!
//! 1. replays the **install journal** (all rule programs installed
//!    before `H`, static text or original `install_rules` messages, in
//!    order — reproducing shard placement exactly);
//! 2. restores the replay marks and every resource store (state as of
//!    `S`);
//! 3. replays `[H, S)` in **warmup mode**
//!    ([`reweb_core::ReactiveEngine::set_replay_warmup`]): events flow
//!    through admission, deduction, and event-query state, re-stamped
//!    with their original event ids — but nothing fires, because every
//!    effect of those records (store writes, outputs, metrics) is
//!    already inside the snapshot;
//! 4. flushes deadlines already due, restores metrics/action logs as of
//!    `S`, and
//! 5. replays `[S, …)` with full effects, discarding the outputs (they
//!    were returned to the caller before the crash).
//!
//! After step 5 the engine state is byte-for-byte what an uninterrupted
//! run would hold — pinned by the crash-matrix property test
//! (`tests/crash_matrix.rs`), which kills runs at every record boundary
//! *and* at random byte offsets inside the torn tail, for single and
//! sharded engines alike. Rules with unbounded retention (window-less
//! joins without a TTL, `agg` buffers) make the horizon unbounded; the
//! snapshot then still restores stores and skips re-executing actions,
//! but the warmup suffix degenerates to the whole log.
//!
//! Not snapshotted (node-local observability, no effect on outputs):
//! AAA accounting records and usage counters, shard occupancy counters,
//! and routing-layer warnings — after a snapshot recovery they cover
//! only the replayed suffix. Genesis recovery (no snapshot) rebuilds
//! them exactly.
//!
//! ## Fsync policy
//!
//! [`SyncPolicy::Always`] (default) fsyncs after every appended record:
//! one fsync per `receive_batch` call, which is what makes batching the
//! throughput lever — E15 measures a ~1000-message batch amortizing its
//! single fsync to negligible per-event cost. [`SyncPolicy::Os`] leaves
//! flushing to the OS page cache: recovery is still *consistent* (the
//! framed log heals at the last durable boundary) but the tail may be
//! lost with the machine, not just the process.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};

use reweb_core::{InMessage, MessageMeta, OutMessage, ReactiveEngine, ReplayMark, ShardedEngine};
use reweb_obs::{Obs, Stage};
use reweb_term::{Dur, Term, TermError, Timestamp};

pub mod outbox;
pub mod snapshot;
pub mod wal;

pub use outbox::{Outbox, OutboxOpen, PendingDelivery, Settle};
pub use snapshot::{JournalEntry, Snapshot};
pub use wal::Record;

use snapshot::ShardState;

/// Errors of the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// An engine- or parse-level failure (rule programs, terms).
    Term(TermError),
    /// Log or snapshot contents that cannot be trusted: bad schema,
    /// unknown records, a snapshot pointing past the end of the log.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Term(e) => write!(f, "persist engine error: {e}"),
            PersistError::Corrupt(m) => write!(f, "persist corruption: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<TermError> for PersistError {
    fn from(e: TermError) -> Self {
        PersistError::Term(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PersistError>;

/// When the log is flushed to stable storage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every appended record (one fsync per
    /// `receive`/`receive_batch`/`install`/`advance` call). Batch your
    /// ingestion to amortize it — that is the E15 durability story.
    #[default]
    Always,
    /// Never fsync; the OS flushes when it pleases. Consistent but not
    /// durable against machine (as opposed to process) crashes.
    Os,
}

/// Configuration of a [`DurableEngine`].
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// Fsync policy (default: [`SyncPolicy::Always`]).
    pub sync: SyncPolicy,
    /// Write a snapshot automatically every this many records (`None` =
    /// only on explicit [`DurableEngine::snapshot_now`] calls).
    pub snapshot_every: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::Always,
            snapshot_every: None,
        }
    }
}

/// What [`DurableEngine::open`] did to bring the engine back.
#[derive(Clone, Debug, Default)]
pub struct RecoveryStats {
    /// True when an existing log was found and replayed.
    pub recovered: bool,
    /// True when a snapshot bounded the replay.
    pub used_snapshot: bool,
    /// Bytes discarded from a torn or corrupt log tail.
    pub torn_bytes: u64,
    /// Records replayed in warmup mode (state only, no effects).
    pub warm_records: u64,
    /// Records replayed with full effects.
    pub replayed_records: u64,
    /// Install-journal entries replayed from the snapshot.
    pub journal_entries: u64,
    /// Wall-clock nanoseconds [`DurableEngine::open`] spent bringing the
    /// engine back (0 for a fresh log). Reported as a `recovery` span
    /// once an observability handle is attached.
    pub elapsed_ns: u64,
}

/// The engine shapes a [`DurableEngine`] can wrap. The trait carries the
/// normal input surface (everything the WAL records) plus the state
/// export/restore hooks recovery needs; `reweb_core` implements the
/// hooks, this crate only drives them.
pub trait Recoverable {
    /// Shape descriptor validated across restarts (e.g. `single`,
    /// `sharded:4:Threads`): recovering a log with a differently shaped
    /// engine would replay into different routing.
    fn descriptor(&self) -> String;
    /// Install a rule program (see [`reweb_core::parse_program`]).
    fn install_source(&mut self, src: &str) -> std::result::Result<(), TermError>;
    /// Process one ingestion batch.
    fn ingest_batch(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<OutMessage>, TermError>;
    /// Process one ingestion batch, tagging each output with the index
    /// of the batch message that produced it (the networked ingress
    /// tier's reply-routing surface). Stripping the tags must reproduce
    /// [`Recoverable::ingest_batch`] byte for byte.
    fn ingest_batch_tagged(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<(u32, OutMessage)>, TermError>;
    /// Advance the virtual clock.
    fn advance_clock(&mut self, t: Timestamp) -> std::result::Result<Vec<OutMessage>, TermError>;
    /// Store a document (replicated to every shard where applicable).
    fn put_doc(&mut self, uri: &str, doc: Term);
    /// The per-shard engines, in shard order (a single engine is one).
    fn engines(&self) -> Vec<&ReactiveEngine>;
    /// Mutable access to the per-shard engines, in shard order.
    fn engines_mut(&mut self) -> Vec<&mut ReactiveEngine>;
    /// The front-end clock (latest time seen).
    fn front_clock(&self) -> Timestamp;
    /// Restore the front-end clock without firing deadlines.
    fn restore_front_clock(&mut self, t: Timestamp);
    /// Toggle warmup-replay mode on every shard.
    fn set_replay_warmup(&mut self, on: bool);
    /// The engine's replay horizon (see
    /// [`reweb_core::ReactiveEngine::replay_horizon`]).
    fn replay_horizon(&self) -> Option<Dur>;
    /// Fire deadlines already due at the current clock (recovery).
    fn flush_due_deadlines(&mut self);
    /// Called once after recovery finished restoring state behind the
    /// engine's back (sharded engines refresh their deadline caches).
    fn after_restore(&mut self) {}
    /// Attach a shared observability handle to every wrapped engine.
    fn set_obs(&mut self, obs: std::sync::Arc<Obs>);
    /// The wrapped engines' observability handle.
    fn obs(&self) -> std::sync::Arc<Obs>;
}

impl Recoverable for ReactiveEngine {
    fn descriptor(&self) -> String {
        "single".into()
    }
    fn install_source(&mut self, src: &str) -> std::result::Result<(), TermError> {
        self.install_program(src)
    }
    fn ingest_batch(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<OutMessage>, TermError> {
        let mut out = Vec::new();
        for m in msgs {
            out.extend(self.receive(m.payload.clone(), &m.meta, m.at));
        }
        Ok(out)
    }
    fn ingest_batch_tagged(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<(u32, OutMessage)>, TermError> {
        Ok(self.receive_batch_tagged(msgs))
    }
    fn advance_clock(&mut self, t: Timestamp) -> std::result::Result<Vec<OutMessage>, TermError> {
        Ok(self.advance_time(t))
    }
    fn put_doc(&mut self, uri: &str, doc: Term) {
        self.qe.store.put(uri.to_string(), doc);
    }
    fn engines(&self) -> Vec<&ReactiveEngine> {
        vec![self]
    }
    fn engines_mut(&mut self) -> Vec<&mut ReactiveEngine> {
        vec![self]
    }
    fn front_clock(&self) -> Timestamp {
        self.now()
    }
    fn restore_front_clock(&mut self, t: Timestamp) {
        self.restore_replay_mark(ReplayMark {
            clock: t,
            ..self.replay_mark()
        });
    }
    fn set_replay_warmup(&mut self, on: bool) {
        ReactiveEngine::set_replay_warmup(self, on);
    }
    fn replay_horizon(&self) -> Option<Dur> {
        ReactiveEngine::replay_horizon(self)
    }
    fn flush_due_deadlines(&mut self) {
        ReactiveEngine::flush_due_deadlines(self);
    }
    fn set_obs(&mut self, obs: std::sync::Arc<Obs>) {
        ReactiveEngine::set_obs(self, obs);
    }
    fn obs(&self) -> std::sync::Arc<Obs> {
        std::sync::Arc::clone(ReactiveEngine::obs(self))
    }
}

impl Recoverable for ShardedEngine {
    fn descriptor(&self) -> String {
        format!("sharded:{}:{:?}", self.shard_count(), self.exec_mode())
    }
    fn install_source(&mut self, src: &str) -> std::result::Result<(), TermError> {
        self.install_program(src)
    }
    fn ingest_batch(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<OutMessage>, TermError> {
        self.try_receive_batch(msgs)
    }
    fn ingest_batch_tagged(
        &mut self,
        msgs: &[InMessage],
    ) -> std::result::Result<Vec<(u32, OutMessage)>, TermError> {
        self.try_receive_batch_tagged(msgs)
    }
    fn advance_clock(&mut self, t: Timestamp) -> std::result::Result<Vec<OutMessage>, TermError> {
        self.try_advance_time(t)
    }
    fn put_doc(&mut self, uri: &str, doc: Term) {
        self.put_resource(uri.to_string(), doc);
    }
    fn engines(&self) -> Vec<&ReactiveEngine> {
        self.shards().iter().collect()
    }
    fn engines_mut(&mut self) -> Vec<&mut ReactiveEngine> {
        self.shards_mut().iter_mut().collect()
    }
    fn front_clock(&self) -> Timestamp {
        self.now()
    }
    fn restore_front_clock(&mut self, t: Timestamp) {
        self.restore_clock(t);
    }
    fn set_replay_warmup(&mut self, on: bool) {
        ShardedEngine::set_replay_warmup(self, on);
    }
    fn replay_horizon(&self) -> Option<Dur> {
        ShardedEngine::replay_horizon(self)
    }
    fn flush_due_deadlines(&mut self) {
        ShardedEngine::flush_due_deadlines(self);
    }
    fn after_restore(&mut self) {
        self.refresh_deadlines();
    }
    fn set_obs(&mut self, obs: std::sync::Arc<Obs>) {
        ShardedEngine::set_obs(self, obs);
    }
    fn obs(&self) -> std::sync::Arc<Obs> {
        std::sync::Arc::clone(ShardedEngine::obs(self))
    }
}

/// A replay mark of one log record: the engine sequence state captured
/// *before* the record was processed, so a future snapshot can name this
/// record as its warmup start.
#[derive(Clone, Debug)]
struct Mark {
    /// Record offset in the WAL.
    offset: u64,
    /// Effective latest event time of the record (monotone across
    /// records): what the retention horizon is compared against.
    at: Timestamp,
    /// Front-end clock before processing.
    front_clock: Timestamp,
    /// Per-shard replay marks before processing.
    engine_marks: Vec<ReplayMark>,
    /// Install-journal length before this record's entries.
    journal_len: usize,
}

/// A crash-recoverable wrapper around a reactive or sharded engine: same
/// input surface, plus a write-ahead log and snapshots underneath. See
/// the crate docs for the recovery discipline.
pub struct DurableEngine<E: Recoverable> {
    engine: E,
    wal: wal::Wal,
    snap_path: PathBuf,
    opts: DurableOptions,
    /// Offset of the first non-header record (genesis warm start).
    genesis_offset: u64,
    /// Every rule install since genesis, in order.
    journal: Vec<JournalEntry>,
    /// Replay marks of recent records, pruned to the retention horizon.
    marks: VecDeque<Mark>,
    records_since_snapshot: u64,
    recovery: RecoveryStats,
    /// Mirror of the wrapped engine's observability handle, kept locally
    /// so the per-record fsync path pays one relaxed load, not an
    /// `Arc` clone through the `Recoverable` accessor.
    obs: std::sync::Arc<Obs>,
}

impl<E: Recoverable> fmt::Debug for DurableEngine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableEngine")
            .field("engine", &Recoverable::descriptor(&self.engine))
            .field("wal_len", &self.wal.len())
            .field("journal_entries", &self.journal.len())
            .finish_non_exhaustive()
    }
}

enum Mode {
    Live,
    Warm,
    Replay,
}

impl<E: Recoverable> DurableEngine<E> {
    /// Open (or create) a durable engine rooted at `dir`. `build` must
    /// return the engine in its *configured blank* state — same shape,
    /// AAA setup, and TTL the original process used; everything dynamic
    /// (rules, events, stores) is replayed from disk. Fails on real
    /// corruption (unknown records, schema/shape mismatch, a snapshot
    /// pointing past the log end); a torn log tail or half-written
    /// snapshot is healed silently and reported in
    /// [`DurableEngine::recovery`].
    pub fn open(dir: &Path, opts: DurableOptions, build: impl FnOnce() -> E) -> Result<Self> {
        let opened_at = std::time::Instant::now();
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("wal.log");
        let snap_path = dir.join("snapshot.bin");
        let opened = wal::Wal::open(&wal_path)?;
        let engine = build();
        let desc = Recoverable::descriptor(&engine);

        let mut records = opened.records;
        let genesis_offset = match records.first() {
            None => {
                // Fresh log: stamp the header. A snapshot without any log
                // would drop every event since that snapshot — refuse.
                if Snapshot::read_from(&snap_path)?.is_some() {
                    return Err(PersistError::Corrupt(
                        "snapshot exists but the write-ahead log is empty: the log was \
                         truncated after the snapshot was taken; recovery would silently \
                         drop events"
                            .into(),
                    ));
                }
                let mut w = opened.wal;
                let head = Record::Head {
                    schema: wal::WAL_SCHEMA.to_string(),
                    engine: desc,
                };
                w.append(&head)?;
                w.sync()?;
                let genesis = w.len();
                let obs = Recoverable::obs(&engine);
                return Ok(DurableEngine {
                    engine,
                    wal: w,
                    snap_path,
                    opts,
                    genesis_offset: genesis,
                    journal: Vec::new(),
                    marks: VecDeque::new(),
                    records_since_snapshot: 0,
                    recovery: RecoveryStats::default(),
                    obs,
                });
            }
            Some((_, Record::Head { schema, engine })) => {
                if schema != wal::WAL_SCHEMA {
                    return Err(PersistError::Corrupt(format!(
                        "log schema `{schema}` is not `{}`",
                        wal::WAL_SCHEMA
                    )));
                }
                if *engine != desc {
                    return Err(PersistError::Corrupt(format!(
                        "log was written by engine `{engine}` but `{desc}` is recovering it"
                    )));
                }
                records.remove(0);
                match records.first() {
                    Some((off, _)) => *off,
                    None => opened.wal.len(),
                }
            }
            Some((_, other)) => {
                return Err(PersistError::Corrupt(format!(
                    "log does not start with a header record (found {other:?})"
                )));
            }
        };

        let mut stats = RecoveryStats {
            recovered: true,
            torn_bytes: opened.torn_bytes,
            ..RecoveryStats::default()
        };

        let snapshot = Snapshot::read_from(&snap_path)?;
        let obs = Recoverable::obs(&engine);
        let mut me = DurableEngine {
            engine,
            wal: opened.wal,
            snap_path,
            opts,
            genesis_offset,
            journal: Vec::new(),
            marks: VecDeque::new(),
            records_since_snapshot: 0,
            recovery: RecoveryStats::default(),
            obs,
        };

        match snapshot {
            Some(snap) => {
                me.recover_with_snapshot(&records, snap, &mut stats)?;
            }
            None => {
                for (off, rec) in &records {
                    me.apply(*off, rec, Mode::Replay)?;
                    stats.replayed_records += 1;
                }
            }
        }
        me.engine.after_restore();
        me.records_since_snapshot = stats.replayed_records;
        stats.elapsed_ns = opened_at.elapsed().as_nanos() as u64;
        me.recovery = stats;
        Ok(me)
    }

    /// Attach a shared observability handle to the wrapped engine(s) and
    /// this durability layer (fsync stalls, recovery span). If this
    /// handle recovered an existing log, the recovery duration is
    /// recorded as a `recovery` span at attach time.
    pub fn set_obs(&mut self, obs: std::sync::Arc<Obs>) {
        self.engine.set_obs(std::sync::Arc::clone(&obs));
        self.obs = obs;
        if self.obs.is_enabled() && self.recovery.recovered {
            self.obs
                .span(0, Stage::Recovery, 0, self.recovery.elapsed_ns);
        }
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &std::sync::Arc<Obs> {
        &self.obs
    }

    /// Flush the WAL, recording the stall into the fsync histogram (and
    /// an untraced `fsync` span) when observability is on.
    fn sync_wal(&mut self) -> Result<()> {
        if !self.obs.is_enabled() {
            return self.wal.sync();
        }
        let t0 = self.obs.now_ns();
        let r = self.wal.sync();
        let dur = self.obs.now_ns().saturating_sub(t0);
        self.obs.fsync.record(dur);
        self.obs.span(0, Stage::Fsync, t0, dur);
        r
    }

    fn recover_with_snapshot(
        &mut self,
        records: &[(u64, Record)],
        snap: Snapshot,
        stats: &mut RecoveryStats,
    ) -> Result<()> {
        stats.used_snapshot = true;
        let desc = Recoverable::descriptor(&self.engine);
        if snap.engine != desc {
            return Err(PersistError::Corrupt(format!(
                "snapshot was taken from engine `{}` but `{desc}` is recovering it",
                snap.engine
            )));
        }
        let end = self.wal.len();
        if snap.log_offset > end {
            return Err(PersistError::Corrupt(format!(
                "snapshot is newer than the log: it references offset {} but the log \
                 ends at {end}; the log lost records after the snapshot was taken and \
                 recovery would silently drop those events",
                snap.log_offset
            )));
        }
        let boundary = |off: u64| off == end || records.iter().any(|(o, _)| *o == off);
        if !boundary(snap.log_offset) || !boundary(snap.warm_offset) {
            return Err(PersistError::Corrupt(
                "snapshot offsets do not lie on log record boundaries".into(),
            ));
        }
        if snap.shards.len() != self.engine.engines().len() {
            return Err(PersistError::Corrupt(format!(
                "snapshot has {} shards, engine has {}",
                snap.shards.len(),
                self.engine.engines().len()
            )));
        }

        // 1. Suppress all effects while state is reassembled.
        self.engine.set_replay_warmup(true);

        // 2. Rule base as of the warm offset: replay the install journal
        //    through the engine's normal install paths, so routing and
        //    scoping come out exactly as they did originally.
        for entry in &snap.journal {
            match entry {
                JournalEntry::Static(src) => {
                    let _ = self.engine.install_source(src);
                }
                JournalEntry::Dynamic(m) => {
                    let _ = self.engine.ingest_batch(std::slice::from_ref(m));
                }
            }
            stats.journal_entries += 1;
        }
        self.journal = snap.journal.clone();

        // 3. Sequence state as of the warm offset, stores as of the
        //    snapshot offset (warmup never touches stores).
        for (e, mark) in self
            .engine
            .engines_mut()
            .into_iter()
            .zip(snap.warm_marks.iter())
        {
            e.restore_replay_mark(*mark);
        }
        self.engine.restore_front_clock(snap.warm_clock);
        for (e, shard) in self
            .engine
            .engines_mut()
            .into_iter()
            .zip(snap.shards.iter())
        {
            for (uri, version, doc) in &shard.resources {
                e.qe.store
                    .put_with_version(uri.clone(), doc.clone(), *version);
            }
        }
        self.engine.after_restore();

        // 4. Warmup replay [H, S): rebuild composite-event state.
        for (off, rec) in records {
            if *off < snap.warm_offset || *off >= snap.log_offset {
                continue;
            }
            self.apply(*off, rec, Mode::Warm)?;
            stats.warm_records += 1;
        }

        // 5. Deadlines the restored clock jumped over must not fire
        //    spuriously later; discharge them while still suppressed.
        self.engine.flush_due_deadlines();
        self.engine.set_replay_warmup(false);

        // 6. Observability as of S overwrites whatever warmup touched.
        for (e, shard) in self
            .engine
            .engines_mut()
            .into_iter()
            .zip(snap.shards.iter())
        {
            e.metrics = shard.metrics.clone();
            e.action_log = shard.action_log.clone();
        }
        self.engine.after_restore();

        // 7. Full replay of the suffix [S, …): effects on, outputs
        //    discarded (the pre-crash process already returned them).
        for (off, rec) in records {
            if *off < snap.log_offset {
                continue;
            }
            self.apply(*off, rec, Mode::Replay)?;
            stats.replayed_records += 1;
        }
        Ok(())
    }

    /// Append + process one record. In `Live` mode engine errors
    /// propagate to the caller; in replay modes they are swallowed — the
    /// original caller already saw them, and installation has no
    /// rollback, so re-running the same text reproduces the same partial
    /// state.
    fn apply(&mut self, offset: u64, rec: &Record, mode: Mode) -> Result<Vec<OutMessage>> {
        self.push_mark(offset, rec);
        let live = matches!(mode, Mode::Live);
        match rec {
            Record::Head { .. } => Ok(Vec::new()),
            Record::Install(src) => {
                self.journal.push(JournalEntry::Static(src.clone()));
                match self.engine.install_source(src) {
                    Ok(()) => Ok(Vec::new()),
                    Err(e) if live => Err(e.into()),
                    Err(_) => Ok(Vec::new()),
                }
            }
            Record::Batch(msgs) => {
                for m in msgs {
                    if m.payload.label() == Some("install_rules") {
                        self.journal.push(JournalEntry::Dynamic(m.clone()));
                    }
                }
                match self.engine.ingest_batch(msgs) {
                    Ok(out) => Ok(out),
                    Err(e) if live => Err(e.into()),
                    Err(_) => Ok(Vec::new()),
                }
            }
            Record::Advance(t) => match self.engine.advance_clock(*t) {
                Ok(out) => Ok(out),
                Err(e) if live => Err(e.into()),
                Err(_) => Ok(Vec::new()),
            },
            Record::Put { uri, doc } => {
                // Warmup skips puts: the snapshot's store already holds
                // the final as-of-S value; re-putting an older one would
                // clobber later in-window updates.
                if !matches!(mode, Mode::Warm) {
                    self.engine.put_doc(uri, doc.clone());
                }
                Ok(Vec::new())
            }
        }
    }

    /// Capture this record's replay mark (sequence state *before*
    /// processing) and prune marks that fell behind the retention
    /// horizon.
    fn push_mark(&mut self, offset: u64, rec: &Record) {
        let clock = self.engine.front_clock();
        let at = match rec {
            Record::Batch(msgs) => msgs.iter().map(|m| m.at).fold(clock, Timestamp::max),
            Record::Advance(t) => clock.max(*t),
            _ => clock,
        };
        let engine_marks = self
            .engine
            .engines()
            .iter()
            .map(|e| e.replay_mark())
            .collect();
        self.marks.push_back(Mark {
            offset,
            at,
            front_clock: clock,
            engine_marks,
            journal_len: self.journal.len(),
        });
        match self.engine.replay_horizon() {
            Some(r) => {
                let horizon = at.saturating_sub(r);
                while self.marks.front().is_some_and(|m| m.at < horizon) {
                    self.marks.pop_front();
                }
            }
            None => self.marks.clear(), // unbounded: snapshots warm from genesis
        }
    }

    fn commit(&mut self, rec: Record) -> Result<Vec<OutMessage>> {
        let offset = self.wal.append(&rec)?;
        if self.opts.sync == SyncPolicy::Always {
            self.sync_wal()?;
        }
        let out = self.apply(offset, &rec, Mode::Live)?;
        self.records_since_snapshot += 1;
        if let Some(n) = self.opts.snapshot_every {
            if self.records_since_snapshot >= n {
                self.snapshot_now()?;
            }
        }
        Ok(out)
    }

    /// Log and install a rule program.
    pub fn install_program(&mut self, src: &str) -> Result<()> {
        self.commit(Record::Install(src.to_string())).map(|_| ())
    }

    /// Log and process one message.
    pub fn receive(
        &mut self,
        payload: Term,
        meta: &MessageMeta,
        at: Timestamp,
    ) -> Result<Vec<OutMessage>> {
        self.commit(Record::Batch(vec![InMessage::new(
            payload,
            meta.clone(),
            at,
        )]))
    }

    /// Log and process one ingestion batch (one log record, one fsync).
    pub fn receive_batch(&mut self, msgs: &[InMessage]) -> Result<Vec<OutMessage>> {
        self.commit(Record::Batch(msgs.to_vec()))
    }

    /// [`DurableEngine::receive_batch`], tagging each output with the
    /// index of the batch message that produced it (see
    /// [`Recoverable::ingest_batch_tagged`]). Same log record, same
    /// fsync policy, same snapshot cadence as the untagged path —
    /// recovery replays the record through the untagged surface, which
    /// is byte-identical once tags are stripped.
    pub fn receive_batch_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>> {
        let rec = Record::Batch(msgs.to_vec());
        let offset = self.wal.append(&rec)?;
        if self.opts.sync == SyncPolicy::Always {
            self.sync_wal()?;
        }
        self.push_mark(offset, &rec);
        for m in msgs {
            if m.payload.label() == Some("install_rules") {
                self.journal.push(JournalEntry::Dynamic(m.clone()));
            }
        }
        let out = self.engine.ingest_batch_tagged(msgs)?;
        self.records_since_snapshot += 1;
        if let Some(n) = self.opts.snapshot_every {
            if self.records_since_snapshot >= n {
                self.snapshot_now()?;
            }
        }
        Ok(out)
    }

    /// Log and apply a clock advance.
    pub fn advance_time(&mut self, t: Timestamp) -> Result<Vec<OutMessage>> {
        self.commit(Record::Advance(t))
    }

    /// Log and apply a direct resource write.
    pub fn put_resource(&mut self, uri: &str, doc: Term) -> Result<()> {
        self.commit(Record::Put {
            uri: uri.to_string(),
            doc,
        })
        .map(|_| ())
    }

    /// Write a snapshot of the current durable state (see crate docs).
    pub fn snapshot_now(&mut self) -> Result<()> {
        // The snapshot references `wal.len()`; under `SyncPolicy::Os`
        // those bytes may still live in the page cache. Flush first, so
        // a durable snapshot can never point past the durable log — a
        // machine crash in that window would otherwise leave a node that
        // refuses to start ("snapshot is newer than the log").
        self.sync_wal()?;
        let end = self.wal.len();
        let clock = self.engine.front_clock();
        // Warm start: the first retained record inside the retention
        // horizon. No such record (quiet log, or everything expired) ⇒
        // the snapshot is self-sufficient and warms from its own offset;
        // unbounded retention ⇒ warm from genesis.
        let (warm_offset, warm_clock, warm_marks, journal_len) = match self.engine.replay_horizon()
        {
            None => (
                self.genesis_offset,
                Timestamp::ZERO,
                vec![ReplayMark::default(); self.engine.engines().len()],
                0usize,
            ),
            Some(r) => {
                let horizon = clock.saturating_sub(r);
                match self.marks.iter().find(|m| m.at >= horizon) {
                    Some(m) => (
                        m.offset,
                        m.front_clock,
                        m.engine_marks.clone(),
                        m.journal_len,
                    ),
                    None => (
                        end,
                        clock,
                        self.engine
                            .engines()
                            .iter()
                            .map(|e| e.replay_mark())
                            .collect(),
                        self.journal.len(),
                    ),
                }
            }
        };
        let shards = self
            .engine
            .engines()
            .iter()
            .map(|e| ShardState {
                resources: e
                    .qe
                    .store
                    .uris()
                    .map(|u| {
                        (
                            u.to_string(),
                            e.qe.store.version(u).expect("listed uri"),
                            e.qe.store.get(u).expect("listed uri").clone(),
                        )
                    })
                    .collect(),
                metrics: e.metrics.clone(),
                action_log: e.action_log.clone(),
            })
            .collect();
        let snap = Snapshot {
            engine: Recoverable::descriptor(&self.engine),
            log_offset: end,
            warm_offset,
            warm_clock,
            warm_marks,
            journal: self.journal[..journal_len].to_vec(),
            shards,
        };
        snap.write_to(&self.snap_path)?;
        self.records_since_snapshot = 0;
        Ok(())
    }

    /// The wrapped engine (read access; mutating it directly would
    /// bypass the log).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// What recovery did when this handle was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Valid bytes in the write-ahead log.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Path of the write-ahead log file.
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }

    /// Flush the log to stable storage regardless of [`SyncPolicy`].
    pub fn sync(&mut self) -> Result<()> {
        self.sync_wal()
    }
}
