//! The delivery outbox: a durable journal of outbound reactions that
//! have been produced but not yet acknowledged by their destination.
//!
//! The delivery agent (`reweb_net::delivery`) is the write side of the
//! at-least-once story; this journal is what survives a crash of the
//! *sending* node. Every reaction handed to the agent is appended as an
//! `o_enq` record *before* the first dial attempt; every destination
//! acknowledgment (or dead-letter settlement) is appended as an `o_ack`
//! / `o_dead` record after the fact. Recovery replays the journal and
//! returns the unsettled remainder — exactly the deliveries whose fate
//! the crash interrupted — so the restarted agent re-queues them. A
//! re-queued delivery may already have reached its destination (the
//! crash can land between the peer's ack being sent and our `o_ack`
//! being durable); that is the "at-least-once" in at-least-once, and the
//! receiver deduplicates by the delivery key, which embeds the stable
//! outbox sequence number.
//!
//! The on-disk format is the same CRC-framed textual-term log as the WAL
//! ([`reweb_term::frame`]), with the same torn-tail discipline: a
//! truncated or CRC-broken final record is the expected residue of a
//! crash and is healed by truncation, never an error.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use reweb_term::frame::{scan_frames, write_frame, FRAME_HEADER_LEN};
use reweb_term::{parse_term, Term, Timestamp};

use crate::wal::{field_child, field_text, field_u64};
use crate::{PersistError, Result, SyncPolicy};

/// Magic first record of every outbox journal.
pub const OUTBOX_SCHEMA: &str = "reweb-outbox/v1";

/// One unsettled outbound reaction recovered from (or tracked by) the
/// journal.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingDelivery {
    /// Stable, monotone sequence number — assigned at enqueue, embedded
    /// in the wire-level delivery key, never reused.
    pub seq: u64,
    /// Destination URI from the reaction's `to[...]`.
    pub to: String,
    /// Event time of the originating reaction.
    pub at: Timestamp,
    /// The reaction term itself.
    pub payload: Term,
}

/// How a delivery left the pending set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Settle {
    /// The destination acknowledged ingestion.
    Acked,
    /// The retry budget ran out; the reaction went to the dead-letter
    /// log instead (still recoverable — just no longer *pending*).
    DeadLettered,
}

enum OutboxRecord {
    Head { schema: String },
    Enq(PendingDelivery),
    Settle { seq: u64, how: Settle },
}

impl OutboxRecord {
    fn to_bytes(&self) -> Vec<u8> {
        let term = match self {
            OutboxRecord::Head { schema } => Term::build("o_head")
                .unordered()
                .field("schema", schema)
                .finish(),
            OutboxRecord::Enq(p) => Term::build("o_enq")
                .unordered()
                .field("seq", p.seq.to_string())
                .field("to", &p.to)
                .field("at", p.at.millis().to_string())
                .child(Term::ordered("payload", vec![p.payload.clone()]))
                .finish(),
            OutboxRecord::Settle {
                seq,
                how: Settle::Acked,
            } => Term::build("o_ack")
                .unordered()
                .field("seq", seq.to_string())
                .finish(),
            OutboxRecord::Settle {
                seq,
                how: Settle::DeadLettered,
            } => Term::build("o_dead")
                .unordered()
                .field("seq", seq.to_string())
                .finish(),
        };
        term.to_string().into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<OutboxRecord> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| PersistError::Corrupt("outbox record is not UTF-8".into()))?;
        let t = parse_term(text)?;
        match t.label() {
            Some("o_head") => Ok(OutboxRecord::Head {
                schema: field_text(&t, "schema")?,
            }),
            Some("o_enq") => Ok(OutboxRecord::Enq(PendingDelivery {
                seq: field_u64(&t, "seq")?,
                to: field_text(&t, "to")?,
                at: Timestamp(field_u64(&t, "at")?),
                payload: field_child(&t, "payload")?.clone(),
            })),
            Some("o_ack") => Ok(OutboxRecord::Settle {
                seq: field_u64(&t, "seq")?,
                how: Settle::Acked,
            }),
            Some("o_dead") => Ok(OutboxRecord::Settle {
                seq: field_u64(&t, "seq")?,
                how: Settle::DeadLettered,
            }),
            other => Err(PersistError::Corrupt(format!(
                "unknown outbox record label {other:?}"
            ))),
        }
    }
}

/// Result of opening (and torn-tail-healing) an outbox journal.
pub struct OutboxOpen {
    /// The append handle.
    pub outbox: Outbox,
    /// Every enqueued-but-unsettled delivery, in sequence order.
    pub pending: Vec<PendingDelivery>,
    /// Bytes discarded from a torn or corrupt tail.
    pub torn_bytes: u64,
}

/// Append handle over the outbox journal. All writes go through the
/// configured [`SyncPolicy`]; with [`SyncPolicy::Always`] an enqueue is
/// durable before the agent's first dial attempt, which is what makes
/// the pending set exact across sender crashes.
pub struct Outbox {
    file: File,
    len: u64,
    path: PathBuf,
    sync: SyncPolicy,
    next_seq: u64,
    /// Unsettled sequence numbers with their payloads — kept in memory
    /// for inspection ([`Outbox::pending_count`]) and compaction.
    live: BTreeMap<u64, PendingDelivery>,
    /// Settlements journaled so far (ack + dead), for accounting.
    settled: u64,
}

impl Outbox {
    /// Open (creating if absent) the journal at `path`: heal the torn
    /// tail, replay the records, and return the unsettled remainder.
    pub fn open(path: &Path, sync: SyncPolicy) -> Result<OutboxOpen> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        let scan = scan_frames(&bytes);
        let torn_bytes = bytes.len() as u64 - scan.valid_len;
        let mut live = BTreeMap::new();
        let mut next_seq = 0u64;
        let mut settled = 0u64;
        for (i, (_, payload)) in scan.frames.iter().enumerate() {
            match OutboxRecord::from_bytes(payload)? {
                OutboxRecord::Head { schema } => {
                    if i != 0 {
                        return Err(PersistError::Corrupt("outbox header not first".into()));
                    }
                    if schema != OUTBOX_SCHEMA {
                        return Err(PersistError::Corrupt(format!(
                            "outbox schema `{schema}` is not `{OUTBOX_SCHEMA}`"
                        )));
                    }
                }
                OutboxRecord::Enq(p) => {
                    next_seq = next_seq.max(p.seq + 1);
                    live.insert(p.seq, p);
                }
                OutboxRecord::Settle { seq, .. } => {
                    live.remove(&seq);
                    settled += 1;
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if torn_bytes > 0 {
            file.set_len(scan.valid_len)?;
        }
        let mut outbox = Outbox {
            file,
            len: scan.valid_len,
            path: path.to_path_buf(),
            sync,
            next_seq,
            live,
            settled,
        };
        if outbox.len == 0 {
            outbox.append(&OutboxRecord::Head {
                schema: OUTBOX_SCHEMA.into(),
            })?;
        }
        let pending = outbox.live.values().cloned().collect();
        Ok(OutboxOpen {
            outbox,
            pending,
            torn_bytes,
        })
    }

    fn append(&mut self, rec: &OutboxRecord) -> Result<()> {
        let payload = rec.to_bytes();
        if let Err(e) = write_frame(&mut self.file, &payload) {
            // Same discipline as the WAL: never leave garbage at the
            // tail for a later successful append to land behind.
            let _ = self.file.set_len(self.len);
            return Err(e.into());
        }
        self.len += (FRAME_HEADER_LEN + payload.len()) as u64;
        if self.sync == SyncPolicy::Always {
            self.file.flush()?;
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Journal one outbound reaction; returns its sequence number. The
    /// record is durable (per policy) when this returns — only then may
    /// the agent start dialing.
    pub fn enqueue(&mut self, to: &str, at: Timestamp, payload: &Term) -> Result<u64> {
        let seq = self.next_seq;
        let p = PendingDelivery {
            seq,
            to: to.to_string(),
            at,
            payload: payload.clone(),
        };
        self.append(&OutboxRecord::Enq(p.clone()))?;
        self.next_seq += 1;
        self.live.insert(seq, p);
        Ok(seq)
    }

    /// Re-journal a previously settled delivery under its *original*
    /// sequence number — the redeliver path for dead letters. Keeping
    /// the seq (and with it the wire-level delivery key) is what lets
    /// the receiver recognize a redelivered reaction it already
    /// ingested once via a lost ack.
    pub fn requeue(&mut self, p: &PendingDelivery) -> Result<()> {
        if self.live.contains_key(&p.seq) {
            return Ok(());
        }
        self.append(&OutboxRecord::Enq(p.clone()))?;
        self.next_seq = self.next_seq.max(p.seq + 1);
        self.live.insert(p.seq, p.clone());
        Ok(())
    }

    /// Journal a settlement: the delivery was acknowledged by the
    /// destination, or moved to the dead-letter log. Unknown or
    /// already-settled sequence numbers are a no-op (the agent may
    /// settle the same seq twice across a redeliver race).
    pub fn settle(&mut self, seq: u64, how: Settle) -> Result<()> {
        if self.live.remove(&seq).is_none() {
            return Ok(());
        }
        self.settled += 1;
        self.append(&OutboxRecord::Settle { seq, how })
    }

    /// Deliveries enqueued but not yet settled.
    pub fn pending_count(&self) -> usize {
        self.live.len()
    }

    /// Settlement records journaled so far (acked + dead-lettered).
    pub fn settled_count(&self) -> u64 {
        self.settled
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrite the journal with only the header and the unsettled
    /// remainder (write-to-temp then rename, so a crash mid-compaction
    /// leaves either the old or the new journal, never a mix). Call
    /// when the settled prefix dominates the file.
    pub fn compact(&mut self) -> Result<()> {
        let tmp = self.path.with_extension("compact");
        {
            let mut f = File::create(&tmp)?;
            write_frame(
                &mut f,
                &OutboxRecord::Head {
                    schema: OUTBOX_SCHEMA.into(),
                }
                .to_bytes(),
            )?;
            for p in self.live.values() {
                write_frame(&mut f, &OutboxRecord::Enq(p.clone()).to_bytes())?;
            }
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.len = self.file.metadata()?.len();
        self.settled = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reweb-outbox-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("outbox.log");
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn pending_survives_reopen_and_settlement_is_final() {
        let path = scratch("reopen");
        let mut ob = Outbox::open(&path, SyncPolicy::Always).unwrap().outbox;
        let s0 = ob
            .enqueue("http://b/", Timestamp(10), &Term::elem("x"))
            .unwrap();
        let s1 = ob
            .enqueue("http://c/", Timestamp(20), &Term::elem("y"))
            .unwrap();
        let s2 = ob
            .enqueue("http://b/", Timestamp(30), &Term::elem("z"))
            .unwrap();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        ob.settle(s1, Settle::Acked).unwrap();
        ob.settle(s0, Settle::DeadLettered).unwrap();
        ob.settle(s0, Settle::DeadLettered).unwrap(); // duplicate: no-op
        assert_eq!(ob.pending_count(), 1);
        drop(ob);

        let open = Outbox::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(open.torn_bytes, 0);
        assert_eq!(open.pending.len(), 1);
        assert_eq!(open.pending[0].seq, s2);
        assert_eq!(open.pending[0].to, "http://b/");
        assert_eq!(open.pending[0].payload, Term::elem("z"));
        // Sequence numbers are never reused after recovery.
        let mut ob = open.outbox;
        let s3 = ob
            .enqueue("http://b/", Timestamp(40), &Term::elem("w"))
            .unwrap();
        assert_eq!(s3, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_heals_and_compaction_preserves_pending() {
        let path = scratch("torn");
        let mut ob = Outbox::open(&path, SyncPolicy::Always).unwrap().outbox;
        for i in 0..4 {
            ob.enqueue("http://b/", Timestamp(i), &Term::elem("e"))
                .unwrap();
        }
        ob.settle(0, Settle::Acked).unwrap();
        ob.settle(1, Settle::Acked).unwrap();
        drop(ob);

        // Tear mid-record: the last settle survives, garbage heals.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let open = Outbox::open(&path, SyncPolicy::Always).unwrap();
        assert!(open.torn_bytes > 0);
        // The torn record was `o_ack{seq["1"]}` minus 3 bytes, so seq 1
        // is pending again — re-delivering an already-acked reaction is
        // exactly the at-least-once contract.
        let seqs: Vec<u64> = open.pending.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);

        let mut ob = open.outbox;
        ob.compact().unwrap();
        drop(ob);
        let open = Outbox::open(&path, SyncPolicy::Always).unwrap();
        let seqs: Vec<u64> = open.pending.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "compaction kept the pending set");
        assert!(open.outbox.next_seq == 4, "compaction kept seq monotone");
        let _ = std::fs::remove_file(&path);
    }
}
