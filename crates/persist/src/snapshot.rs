//! Snapshot files: durable engine state at a log offset.
//!
//! A snapshot makes recovery *bounded*: instead of replaying the whole
//! write-ahead log from genesis, recovery loads the snapshot and replays
//! only a log suffix. The file carries, as CRC-framed textual terms:
//!
//! * `s_meta` — schema, engine descriptor, the snapshot's **log offset**
//!   `S` (state below is exact as of `S`) and **warm offset** `H` (the
//!   retention-horizon record recovery starts replaying from — see the
//!   crate docs for why `H < S` rebuilds composite-event state exactly);
//! * `s_mark` — per-shard [`reweb_core::ReplayMark`]s as of `H`;
//! * `s_prog` / `s_dyn` — the install journal up to `H`: every rule
//!   program installed statically (reprinted rule text) or dynamically
//!   (the original `install_rules` message, so shard placement replays
//!   through the same admission path);
//! * `s_res` — every resource-store document of every shard as of `S`,
//!   with its version counter;
//! * `s_metrics` / `s_alog` — per-shard engine metrics and action logs
//!   as of `S` (restored so observability survives a crash);
//! * `s_end` — terminator; a snapshot file without it (crash mid-write)
//!   is ignored in favor of genesis replay.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use reweb_core::{EngineMetrics, InMessage, ReplayMark};
use reweb_term::frame::{scan_frames, write_frame};
use reweb_term::{parse_term, Term, Timestamp};

use crate::wal::{field_text, field_u64, msg_from_term, msg_to_term};
use crate::{PersistError, Result};

/// Schema tag of snapshot files this build reads and writes.
pub const SNAP_SCHEMA: &str = "reweb-snap/v1";

/// One entry of the install journal: how a rule program entered the
/// engine, in order. Replaying the journal reproduces the rule base —
/// including shard placement, which for dynamic installs depends on the
/// admitting message, not just the rules.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalEntry {
    /// `install_program` text (original source, or a reprinted rule set).
    Static(String),
    /// An `install_rules` message as received.
    Dynamic(InMessage),
}

/// Per-shard state captured as of the snapshot's log offset.
#[derive(Clone, Debug, Default)]
pub struct ShardState {
    /// `(uri, version, doc)` of every stored resource.
    pub resources: Vec<(String, u64, Term)>,
    /// Engine metrics (counters, per-rule fires, error log).
    pub metrics: EngineMetrics,
    /// Terms written by `LOG` actions.
    pub action_log: Vec<Term>,
}

/// A decoded snapshot.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Engine descriptor the snapshot was taken from (shape validation).
    pub engine: String,
    /// Log offset `S`: stores/metrics/logs below are exact as of `S`.
    pub log_offset: u64,
    /// Warm offset `H ≤ S`: recovery replays `[H, S)` in warmup mode to
    /// rebuild composite-event partial state, then `[S, …)` fully.
    pub warm_offset: u64,
    /// Front-end clock as of `H` (restored before warm replay).
    pub warm_clock: Timestamp,
    /// Per-shard replay marks as of `H`.
    pub warm_marks: Vec<ReplayMark>,
    /// Install journal entries from before `H` (later installs are
    /// replayed from the log itself).
    pub journal: Vec<JournalEntry>,
    /// Per-shard state as of `S`.
    pub shards: Vec<ShardState>,
}

fn metrics_to_term(shard: usize, m: &EngineMetrics) -> Term {
    Term::build("s_metrics")
        .unordered()
        .field("shard", shard.to_string())
        .field("received", m.events_received.to_string())
        .field("denied", m.events_denied.to_string())
        .field("derived", m.events_derived.to_string())
        .field("alpha", m.alpha_tests_run.to_string())
        .field("considered", m.rules_considered.to_string())
        .field("unmatched", m.events_unmatched.to_string())
        .field("fired", m.rules_fired.to_string())
        .field("cond", m.condition_evals.to_string())
        .field("afail", m.actions_failed.to_string())
        .field("sent", m.messages_sent.to_string())
        .field("installed", m.rules_installed.to_string())
        .field("joins", m.join_attempts.to_string())
        .field("probes", m.index_probes.to_string())
        .child(
            Term::build("fires")
                .children(m.fires_by_rule.iter().map(|(r, n)| {
                    Term::build("f")
                        .unordered()
                        .field("r", r)
                        .field("n", n.to_string())
                        .finish()
                }))
                .finish(),
        )
        .child(
            Term::build("errors")
                .children(m.errors.iter().map(|e| Term::text(e.clone())))
                .finish(),
        )
        .finish()
}

fn metrics_from_term(t: &Term) -> Result<(usize, EngineMetrics)> {
    let shard = field_u64(t, "shard")? as usize;
    let mut m = EngineMetrics {
        events_received: field_u64(t, "received")?,
        events_denied: field_u64(t, "denied")?,
        events_derived: field_u64(t, "derived")?,
        events_unmatched: field_u64(t, "unmatched")?,
        rules_fired: field_u64(t, "fired")?,
        condition_evals: field_u64(t, "cond")?,
        actions_failed: field_u64(t, "afail")?,
        messages_sent: field_u64(t, "sent")?,
        rules_installed: field_u64(t, "installed")?,
        alpha_tests_run: field_u64(t, "alpha")?,
        rules_considered: field_u64(t, "considered")?,
        // Added in PR 7; absent from older snapshots, which read as 0.
        join_attempts: field_u64(t, "joins").unwrap_or(0),
        index_probes: field_u64(t, "probes").unwrap_or(0),
        fires_by_rule: BTreeMap::new(),
        errors: Vec::new(),
    };
    if let Some(fires) = t.children().iter().find(|c| c.label() == Some("fires")) {
        for f in fires.children() {
            m.fires_by_rule
                .insert(field_text(f, "r")?, field_u64(f, "n")?);
        }
    }
    if let Some(errors) = t.children().iter().find(|c| c.label() == Some("errors")) {
        m.errors = errors.children().iter().map(Term::text_content).collect();
    }
    Ok((shard, m))
}

impl Snapshot {
    /// Serialize as a sequence of framed term records (see module docs).
    pub fn to_frames(&self) -> Vec<Vec<u8>> {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut push = |t: Term| frames.push(t.to_string().into_bytes());
        push(
            Term::build("s_meta")
                .unordered()
                .field("schema", SNAP_SCHEMA)
                .field("engine", &self.engine)
                .field("log_offset", self.log_offset.to_string())
                .field("warm_offset", self.warm_offset.to_string())
                .field("warm_clock", self.warm_clock.millis().to_string())
                .field("shards", self.shards.len().to_string())
                .finish(),
        );
        for (i, mark) in self.warm_marks.iter().enumerate() {
            push(
                Term::build("s_mark")
                    .unordered()
                    .field("shard", i.to_string())
                    .field("clock", mark.clock.millis().to_string())
                    .field("eseq", mark.event_seq.to_string())
                    .field("dseq", mark.derived_seq.to_string())
                    .finish(),
            );
        }
        for entry in &self.journal {
            match entry {
                JournalEntry::Static(src) => {
                    push(Term::ordered("s_prog", vec![Term::text(src.clone())]))
                }
                JournalEntry::Dynamic(m) => push(Term::ordered("s_dyn", vec![msg_to_term(m)])),
            }
        }
        for (i, shard) in self.shards.iter().enumerate() {
            for (uri, version, doc) in &shard.resources {
                push(
                    Term::build("s_res")
                        .unordered()
                        .field("shard", i.to_string())
                        .field("uri", uri)
                        .field("version", version.to_string())
                        .child(Term::ordered("doc", vec![doc.clone()]))
                        .finish(),
                );
            }
            push(metrics_to_term(i, &shard.metrics));
            push(
                Term::build("s_alog")
                    .unordered()
                    .field("shard", i.to_string())
                    .child(
                        Term::build("entries")
                            .children(shard.action_log.iter().cloned())
                            .finish(),
                    )
                    .finish(),
            );
        }
        push(Term::build("s_end").unordered().finish());
        frames
    }

    /// Decode a snapshot from raw file bytes. Returns `Ok(None)` for a
    /// file that is incomplete (torn tail or missing `s_end`) — the
    /// residue of a crash mid-snapshot, which recovery handles by
    /// falling back to full log replay. A *complete* file with invalid
    /// contents is corruption and fails.
    pub fn from_bytes(bytes: &[u8]) -> Result<Option<Snapshot>> {
        let scan = scan_frames(bytes);
        let mut terms = Vec::with_capacity(scan.frames.len());
        for (_, payload) in &scan.frames {
            let text = std::str::from_utf8(payload)
                .map_err(|_| PersistError::Corrupt("snapshot record is not UTF-8".into()))?;
            terms.push(parse_term(text)?);
        }
        match terms.last() {
            Some(t) if t.label() == Some("s_end") => {}
            _ => return Ok(None), // incomplete write — not an error
        }
        let meta = terms
            .first()
            .filter(|t| t.label() == Some("s_meta"))
            .ok_or_else(|| PersistError::Corrupt("snapshot does not start with s_meta".into()))?;
        let schema = field_text(meta, "schema")?;
        if schema != SNAP_SCHEMA {
            return Err(PersistError::Corrupt(format!(
                "snapshot schema `{schema}` is not `{SNAP_SCHEMA}`"
            )));
        }
        let n_shards = field_u64(meta, "shards")? as usize;
        let mut snap = Snapshot {
            engine: field_text(meta, "engine")?,
            log_offset: field_u64(meta, "log_offset")?,
            warm_offset: field_u64(meta, "warm_offset")?,
            warm_clock: Timestamp(field_u64(meta, "warm_clock")?),
            warm_marks: vec![ReplayMark::default(); n_shards],
            journal: Vec::new(),
            shards: vec![ShardState::default(); n_shards],
        };
        let shard_slot = |snap: &mut Snapshot, idx: usize| -> Result<usize> {
            if idx >= snap.shards.len() {
                return Err(PersistError::Corrupt(format!(
                    "snapshot names shard {idx} but declares {} shards",
                    snap.shards.len()
                )));
            }
            Ok(idx)
        };
        for t in &terms[1..terms.len() - 1] {
            match t.label() {
                Some("s_mark") => {
                    let i = shard_slot(&mut snap, field_u64(t, "shard")? as usize)?;
                    snap.warm_marks[i] = ReplayMark {
                        clock: Timestamp(field_u64(t, "clock")?),
                        event_seq: field_u64(t, "eseq")?,
                        derived_seq: field_u64(t, "dseq")?,
                    };
                }
                Some("s_prog") => {
                    let src = t
                        .children()
                        .first()
                        .map(Term::text_content)
                        .ok_or_else(|| PersistError::Corrupt("s_prog without source".into()))?;
                    snap.journal.push(JournalEntry::Static(src));
                }
                Some("s_dyn") => {
                    let m = t
                        .children()
                        .first()
                        .ok_or_else(|| PersistError::Corrupt("s_dyn without message".into()))?;
                    snap.journal.push(JournalEntry::Dynamic(msg_from_term(m)?));
                }
                Some("s_res") => {
                    let i = shard_slot(&mut snap, field_u64(t, "shard")? as usize)?;
                    let doc = t
                        .children()
                        .iter()
                        .find(|c| c.label() == Some("doc"))
                        .and_then(|w| w.children().first())
                        .ok_or_else(|| PersistError::Corrupt("s_res without doc".into()))?;
                    snap.shards[i].resources.push((
                        field_text(t, "uri")?,
                        field_u64(t, "version")?,
                        doc.clone(),
                    ));
                }
                Some("s_metrics") => {
                    let (i, m) = metrics_from_term(t)?;
                    let i = shard_slot(&mut snap, i)?;
                    snap.shards[i].metrics = m;
                }
                Some("s_alog") => {
                    let i = shard_slot(&mut snap, field_u64(t, "shard")? as usize)?;
                    if let Some(entries) =
                        t.children().iter().find(|c| c.label() == Some("entries"))
                    {
                        snap.shards[i].action_log = entries.children().to_vec();
                    }
                }
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "unknown snapshot record label {other:?}"
                    )))
                }
            }
        }
        Ok(Some(snap))
    }

    /// Write atomically: serialize to `<path>.tmp`, fsync, rename over
    /// `path`, then fsync the directory so the rename itself is durable.
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            for frame in self.to_frames() {
                write_frame(&mut f, &frame)?;
            }
            f.flush()?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all(); // best-effort on platforms that allow it
            }
        }
        Ok(())
    }

    /// Read a snapshot file; `Ok(None)` when absent or incomplete.
    pub fn read_from(path: &Path) -> Result<Option<Snapshot>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_core::MessageMeta;

    fn sample() -> Snapshot {
        let mut metrics = EngineMetrics {
            events_received: 7,
            rules_fired: 3,
            join_attempts: 11,
            index_probes: 5,
            ..EngineMetrics::default()
        };
        metrics.fires_by_rule.insert("r1".into(), 3);
        metrics.errors.push("rule r9: action failed: boom".into());
        Snapshot {
            engine: "sharded:2:Serial".into(),
            log_offset: 420,
            warm_offset: 120,
            warm_clock: Timestamp(9_000),
            warm_marks: vec![
                ReplayMark {
                    clock: Timestamp(8_000),
                    event_seq: 11,
                    derived_seq: 2,
                },
                ReplayMark::default(),
            ],
            journal: vec![
                JournalEntry::Static("RULE r1 ON ping DO NOOP END".into()),
                JournalEntry::Dynamic(InMessage::new(
                    parse_term("install_rules[ruleset{name[\"x\"]}]").unwrap(),
                    MessageMeta::from_uri("http://peer"),
                    Timestamp(50),
                )),
            ],
            shards: vec![
                ShardState {
                    resources: vec![(
                        "http://data/items".into(),
                        4,
                        parse_term("items[item{v[\"0\"]}]").unwrap(),
                    )],
                    metrics,
                    action_log: vec![parse_term("logged{x[\"1\"]}").unwrap()],
                },
                ShardState::default(),
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let mut bytes = Vec::new();
        for frame in snap.to_frames() {
            write_frame(&mut bytes, &frame).unwrap();
        }
        let back = Snapshot::from_bytes(&bytes).unwrap().expect("complete");
        assert_eq!(back.engine, snap.engine);
        assert_eq!(back.log_offset, snap.log_offset);
        assert_eq!(back.warm_offset, snap.warm_offset);
        assert_eq!(back.warm_marks, snap.warm_marks);
        assert_eq!(back.journal, snap.journal);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.shards[0].resources, snap.shards[0].resources);
        assert_eq!(
            back.shards[0].metrics.fires_by_rule,
            snap.shards[0].metrics.fires_by_rule
        );
        assert_eq!(back.shards[0].metrics.errors, snap.shards[0].metrics.errors);
        assert_eq!(back.shards[0].metrics.join_attempts, 11);
        assert_eq!(back.shards[0].metrics.index_probes, 5);
        assert_eq!(back.shards[0].action_log, snap.shards[0].action_log);
    }

    #[test]
    fn incomplete_snapshot_is_none_not_error() {
        let snap = sample();
        let mut bytes = Vec::new();
        for frame in snap.to_frames() {
            write_frame(&mut bytes, &frame).unwrap();
        }
        // Chop off the s_end terminator (and a bit more).
        let cut = bytes.len() - 9;
        assert!(Snapshot::from_bytes(&bytes[..cut]).unwrap().is_none());
        assert!(Snapshot::from_bytes(&[]).unwrap().is_none());
    }
}
