//! The crash matrix: killing a durable engine at *any* point and
//! recovering yields output byte-identical to the uninterrupted run —
//! the durability analogue of the sharded-equivalence discipline in
//! `crates/core/tests/sharded_equivalence.rs`.
//!
//! For a random rule set (atomic, windowed joins, sequences, absence
//! deadlines, wildcards, DETECT cascades, store-reading conditions) and
//! a random event stream, the test runs an uninterrupted durable engine
//! and records every output. Then, for every record boundary of the
//! resulting log (and for random byte offsets *inside* the tail record —
//! a torn write), it:
//!
//! 1. copies the killed node's directory (log prefix + whatever snapshot
//!    was on disk at that moment),
//! 2. recovers a fresh engine from it,
//! 3. feeds the not-yet-durable remainder of the stream, and
//! 4. requires `outputs(prefix) ++ outputs(rest after recovery)` to equal
//!    the uninterrupted run's outputs exactly — order and bytes.
//!
//! Runs cover the single engine and sharded engines (serial and
//! thread-per-shard executors), with snapshots forced at an aggressive
//! cadence so warm-replay recovery is exercised, not just genesis
//! replay.

use proptest::prelude::*;

use reweb_core::{InMessage, MessageMeta, ReactiveEngine, ShardedEngine};
use reweb_persist::{DurableEngine, DurableOptions, Recoverable, SyncPolicy};
use reweb_term::{parse_term, Term, Timestamp};

const LABELS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "eps", "zeta"];

/// Rule-program fragments, mirroring the sharded-equivalence generator:
/// every temporal operator the incremental engine supports, with windows
/// so the replay horizon stays bounded and snapshots actually cut the
/// log. Fragments only SEND (the documented store-sharing caveat).
fn fragment(i: usize, kind: u8, a: usize, b: usize) -> String {
    let la = LABELS[a % LABELS.len()];
    let lb = LABELS[b % LABELS.len()];
    match kind % 9 {
        0 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} DO SEND saw{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        1 => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 2m
               DO SEND pair{i}{{a[var X], b[var Y]}} TO "http://sink/{i}" END"#
        ),
        2 => format!(
            r#"RULE r{i} ON seq({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 90s
               DO SEND seq{i}{{a[var X]}} TO "http://sink/{i}" END"#
        ),
        3 => format!(
            r#"RULE r{i} ON absence({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var X]]}}}}, 30s)
               DO SEND missing{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        4 => format!(
            r#"RULE r{i} ON *{{{{v[[var X]]}}}} DO SEND any{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        5 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} where var X >= 5
               DO SEND big{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        6 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}}
               IF in "http://data/items" item{{{{v[[var X]]}}}}
               THEN SEND hit{i}{{v[var X]}} TO "http://sink/{i}"
               ELSE SEND miss{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        7 => format!(
            r#"DETECT d{i}{{v[var X]}} ON {la}{{{{v[[var X]]}}}} where var X >= 3 END
               RULE r{i} ON d{i}{{{{v[[var X]]}}}} DO SEND derived{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        _ => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, *{{{{tag[[var Y]]}}}}) within 2m
               DO SEND wild{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
    }
}

fn event_payload(label_idx: usize, v: u64) -> Term {
    let label = if label_idx < LABELS.len() {
        LABELS[label_idx]
    } else {
        "noise"
    };
    parse_term(&format!("{label}{{v[\"{v}\"]}}")).unwrap()
}

fn seed_store() -> Term {
    parse_term(
        "items[item{v[\"0\"]}, item{v[\"1\"]}, item{v[\"2\"]}, item{v[\"3\"]}, item{v[\"4\"]}]",
    )
    .unwrap()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("reweb-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn render(out: &[reweb_core::OutMessage]) -> Vec<String> {
    out.iter()
        .map(|o| format!("{}<-{}", o.to, o.payload))
        .collect()
}

/// One durable step per stream element; steps 0 is the program install.
/// Chunked: every third boundary groups two messages into one batch so
/// batch records (and their epilogue semantics) are part of the matrix.
fn steps(program: &str, msgs: &[InMessage]) -> Vec<Step> {
    let mut steps = vec![Step::Install(program.to_string())];
    let mut i = 0;
    while i < msgs.len() {
        if i % 3 == 0 && i + 1 < msgs.len() {
            steps.push(Step::Batch(vec![msgs[i].clone(), msgs[i + 1].clone()]));
            i += 2;
        } else {
            steps.push(Step::Batch(vec![msgs[i].clone()]));
            i += 1;
        }
    }
    if let Some(last) = msgs.last() {
        // A final quiet-period advance so pending absence deadlines fire.
        steps.push(Step::Advance(Timestamp(last.at.millis() + 120_000)));
    }
    steps
}

#[derive(Clone, Debug)]
enum Step {
    Install(String),
    Batch(Vec<InMessage>),
    Advance(Timestamp),
}

fn run_step<E: Recoverable>(d: &mut DurableEngine<E>, s: &Step) -> Vec<String> {
    match s {
        Step::Install(src) => {
            d.install_program(src).expect("install");
            Vec::new()
        }
        Step::Batch(msgs) => render(&d.receive_batch(msgs).expect("batch")),
        Step::Advance(t) => render(&d.advance_time(*t).expect("advance")),
    }
}

/// Drive the full matrix for one engine builder; panics on divergence.
fn crash_matrix<E: Recoverable>(
    tag: &str,
    steps: &[Step],
    opts: DurableOptions,
    build: impl Fn() -> E + Copy,
    tail_cuts: &[u64],
) {
    // Uninterrupted reference run.
    let ref_dir = fresh_dir(&format!("{tag}-ref"));
    let mut reference = DurableEngine::open(&ref_dir, opts, build).expect("open ref");
    let mut ref_outputs: Vec<Vec<String>> = Vec::new();
    let mut dirs_after: Vec<std::path::PathBuf> = Vec::new();
    for (k, s) in steps.iter().enumerate() {
        ref_outputs.push(run_step(&mut reference, s));
        // Preserve the on-disk state exactly as it stands after step k —
        // the "power failed here" images the matrix recovers from.
        let img = fresh_dir(&format!("{tag}-img{k}"));
        copy_dir(&ref_dir, &img);
        dirs_after.push(img);
    }
    let flat_ref: Vec<String> = ref_outputs.iter().flatten().cloned().collect();
    drop(reference);

    // Kill at every record boundary: recover from the image after step k
    // and re-drive steps k+1… . The image itself stays pristine — the
    // revived node lives in a scratch copy, since recovery appends.
    for k in 0..steps.len() {
        let node = fresh_dir(&format!("{tag}-node{k}"));
        copy_dir(&dirs_after[k], &node);
        let mut revived = DurableEngine::open(&node, opts, build)
            .unwrap_or_else(|e| panic!("recovery after step {k} failed ({tag}): {e}"));
        assert!(revived.recovery().recovered);
        let mut outputs: Vec<String> = ref_outputs[..=k].iter().flatten().cloned().collect();
        for s in &steps[k + 1..] {
            outputs.extend(run_step(&mut revived, s));
        }
        assert_eq!(
            outputs, flat_ref,
            "outputs diverged after recovery at step {k} ({tag})"
        );
        drop(revived);
        std::fs::remove_dir_all(&node).ok();
    }

    // Torn-tail kills: truncate the final image at byte offsets inside
    // its tail record; the last step's record is discarded, so recovery
    // must land exactly on the state after the previous step. One caveat:
    // under `SyncPolicy::Os` (which these tests use for speed) a snapshot
    // written after the torn record can survive while the record's bytes
    // do not — a genuine data-loss scenario, which recovery must *refuse*
    // rather than silently drop events. With `SyncPolicy::Always` the
    // record is fsynced before any snapshot can reference it, so that
    // refusal can only signal real log loss.
    let last = dirs_after.last().unwrap();
    let full = std::fs::read(last.join("wal.log")).unwrap();
    let prev_len = std::fs::metadata(dirs_after[steps.len() - 2].join("wal.log"))
        .unwrap()
        .len();
    let tail_len = full.len() as u64 - prev_len;
    for &cut in tail_cuts {
        let cut = prev_len + 1 + cut % (tail_len - 1).max(1);
        let torn = fresh_dir(&format!("{tag}-torn{cut}"));
        copy_dir(last, &torn);
        std::fs::write(torn.join("wal.log"), &full[..cut as usize]).unwrap();
        let mut revived = match DurableEngine::open(&torn, opts, build) {
            Ok(r) => r,
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("newer than the log"),
                    "torn recovery at byte {cut} failed with an unexpected error ({tag}): {msg}"
                );
                std::fs::remove_dir_all(&torn).ok();
                continue; // detected data loss: correct refusal, not silence
            }
        };
        assert_eq!(revived.recovery().torn_bytes, cut - prev_len);
        let k = steps.len() - 2; // state must equal "after step k"
        let mut outputs: Vec<String> = ref_outputs[..=k].iter().flatten().cloned().collect();
        for s in &steps[k + 1..] {
            outputs.extend(run_step(&mut revived, s));
        }
        assert_eq!(
            outputs, flat_ref,
            "outputs diverged after torn-tail recovery at byte {cut} ({tag})"
        );
        std::fs::remove_dir_all(&torn).ok();
    }

    std::fs::remove_dir_all(&ref_dir).ok();
    for d in dirs_after {
        std::fs::remove_dir_all(&d).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Single-engine crash matrix, snapshots every 3 records.
    #[test]
    fn single_engine_crash_matrix(
        rules in proptest::collection::vec((0..9u8, 0..6usize, 0..6usize), 1..5),
        stream in proptest::collection::vec((0..7usize, 0..10u64, 1..20_000u64), 4..18),
        cuts in proptest::collection::vec(0..10_000u64, 2..4),
    ) {
        let program: String = rules
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
            .collect::<Vec<_>>()
            .join("\n");
        let meta = MessageMeta::from_uri("http://peer");
        let mut at = 0u64;
        let msgs: Vec<InMessage> = stream
            .iter()
            .map(|&(l, v, dt)| {
                at += dt;
                InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
            })
            .collect();
        let steps = steps(&program, &msgs);
        let opts = DurableOptions {
            sync: SyncPolicy::Os, // crash-consistency is framing, not fsync
            snapshot_every: Some(3),
        };
        let build = || {
            let mut e = ReactiveEngine::new("http://node");
            e.qe.store.put("http://data/items", seed_store());
            e
        };
        crash_matrix("single", &steps, opts, build, &cuts);
    }

    /// Sharded crash matrix (3 shards, serial executor), snapshots every
    /// 4 records.
    #[test]
    fn sharded_engine_crash_matrix(
        rules in proptest::collection::vec((0..9u8, 0..6usize, 0..6usize), 1..5),
        stream in proptest::collection::vec((0..7usize, 0..10u64, 1..20_000u64), 4..16),
        cuts in proptest::collection::vec(0..10_000u64, 2..3),
    ) {
        let program: String = rules
            .iter()
            .enumerate()
            .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
            .collect::<Vec<_>>()
            .join("\n");
        let meta = MessageMeta::from_uri("http://peer");
        let mut at = 0u64;
        let msgs: Vec<InMessage> = stream
            .iter()
            .map(|&(l, v, dt)| {
                at += dt;
                InMessage::new(event_payload(l, v), meta.clone(), Timestamp(at))
            })
            .collect();
        let steps = steps(&program, &msgs);
        let opts = DurableOptions {
            sync: SyncPolicy::Os,
            snapshot_every: Some(4),
        };
        let build = || {
            let mut e = ShardedEngine::new("http://node", 3);
            e.put_resource("http://data/items", seed_store());
            e
        };
        crash_matrix("sharded", &steps, opts, build, &cuts);
    }
}

/// Deterministic regression: the marketplace mix through a durable
/// *thread-per-shard* engine with dynamic installs, snapshots every 5
/// records, killed at every boundary.
#[test]
fn threaded_sharded_marketplace_crash_matrix() {
    use reweb_core::{parse_program, ruleset_to_term};

    let program = r#"
        RULE on_payment ON and(order{{id[[var O]], total[[var T]]}},
                               payment{{order[[var O]], amount[[var A]]}}) within 2h
             where var A >= var T
          DO SEND paid{order[var O]} TO "http://ship" END
        DETECT big{id[var O]} ON order{{id[[var O]], total[[var T]]}} where var T >= 100 END
        RULE on_big ON big{{id[[var O]]}} DO SEND audit{id[var O]} TO "http://audit" END
        RULE quiet ON absence(ping{{n[[var N]]}}, pong{{n[[var N]]}}, 10s)
          DO SEND silent{n[var N]} TO "http://ops" END
    "#;
    let meta = MessageMeta::from_uri("http://peer");
    let carried = parse_program(
        r#"RULE fresh ON newevt{{v[[var X]]}} DO SEND got{v[var X]} TO "http://sink" END"#,
    )
    .unwrap();
    let install_msg = InMessage::new(
        Term::ordered("install_rules", vec![ruleset_to_term(&carried)]),
        meta.clone(),
        Timestamp(9_000),
    );
    let mut msgs = Vec::new();
    for k in 0..24u64 {
        let at = Timestamp(1_000 + k * 6_000);
        let payload = match k % 5 {
            0 => parse_term(&format!("order{{id[\"o{k}\"], total[\"{}\"]}}", 50 + k * 9)).unwrap(),
            1 => parse_term(&format!(
                "payment{{order[\"o{}\"], amount[\"500\"]}}",
                k - 1
            ))
            .unwrap(),
            2 => parse_term(&format!("ping{{n[\"{k}\"]}}")).unwrap(),
            3 if k % 2 == 1 => parse_term(&format!("pong{{n[\"{}\"]}}", k - 1)).unwrap(),
            _ => parse_term(&format!("newevt{{v[\"{k}\"]}}")).unwrap(),
        };
        msgs.push(InMessage::new(payload, meta.clone(), at));
    }
    msgs.insert(2, install_msg);
    let steps = steps(program, &msgs);
    let opts = DurableOptions {
        sync: SyncPolicy::Os,
        snapshot_every: Some(5),
    };
    let build = || ShardedEngine::new_parallel("http://node", 4);
    crash_matrix("threaded", &steps, opts, build, &[17, 4242]);
}

/// Deterministic regression for the beta network (PR 7): composite
/// `and`/`seq` rules with windows — including `seq`-under-`and` — whose
/// partial-join state straddles every kill point. Recovery must rebuild
/// the join *indexes* from the replayed stream (they are derived data,
/// never serialized), so any divergence between index contents and stored
/// answers shows up as missing or duplicated firings here. The matrix
/// runs in both join modes (cross-mode output equality is pinned
/// separately by `reweb_events`' `join_equivalence` wall).
#[test]
fn composite_join_crash_matrix() {
    use reweb_core::JoinMode;

    let program = r#"
        RULE tri ON and(alpha{{v[[var X]]}}, beta{{v[[var X]], w[[var Y]]}}, gamma{{w[[var Y]]}})
             within 2m
          DO SEND tri{x[var X], y[var Y]} TO "http://sink/tri" END
        RULE chain ON seq(alpha{{v[[var X]]}}, beta{{v[[var X]]}}, gamma{{w[[var Y]]}}) within 90s
          DO SEND chain{x[var X]} TO "http://sink/chain" END
        RULE nest ON and(seq(alpha{{v[[var X]]}}, beta{{v[[var X]]}}) within 60s,
                         gamma{{v[[var Z]]}}) within 2m
          DO SEND nest{x[var X], z[var Z]} TO "http://sink/nest" END
    "#;
    let meta = MessageMeta::from_uri("http://peer");
    let mut msgs = Vec::new();
    for k in 0..18u64 {
        let label = ["alpha", "beta", "gamma"][(k % 3) as usize];
        let payload = parse_term(&format!(
            "{label}{{v[\"{}\"], w[\"{}\"]}}",
            k % 4,
            (k + 1) % 3
        ))
        .unwrap();
        msgs.push(InMessage::new(
            payload,
            meta.clone(),
            Timestamp(1_000 + k * 7_000),
        ));
    }
    let steps = steps(program, &msgs);
    let opts = DurableOptions {
        sync: SyncPolicy::Os,
        snapshot_every: Some(4),
    };
    for mode in [JoinMode::Indexed, JoinMode::Scan] {
        let build = move || {
            let mut e = ReactiveEngine::new("http://node");
            e.set_join_mode(mode);
            e
        };
        crash_matrix(
            &format!("composite-{mode:?}"),
            &steps,
            opts,
            build,
            &[3, 977],
        );
    }
}
