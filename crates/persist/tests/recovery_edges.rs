//! Torn-tail and snapshot edge cases of durable recovery: the inputs a
//! crash (or an operator with `truncate`) can actually leave on disk.

use std::fs::OpenOptions;
use std::path::PathBuf;

use reweb_core::{MessageMeta, ReactiveEngine};
use reweb_persist::{DurableEngine, DurableOptions, PersistError, SyncPolicy};
use reweb_term::{parse_term, Timestamp};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reweb-edge-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> DurableOptions {
    DurableOptions {
        sync: SyncPolicy::Os,
        snapshot_every: None,
    }
}

fn build() -> ReactiveEngine {
    ReactiveEngine::new("http://node")
}

const PROGRAM: &str = r#"RULE r ON ping{{n[[var N]]}} DO SEND pong{n[var N]} TO "http://sink" END"#;

fn feed(d: &mut DurableEngine<ReactiveEngine>, n: u64, from: u64) -> usize {
    let meta = MessageMeta::from_uri("http://peer");
    let mut outs = 0;
    for k in from..from + n {
        outs += d
            .receive(
                parse_term(&format!("ping{{n[\"{k}\"]}}")).unwrap(),
                &meta,
                Timestamp(1_000 * (k + 1)),
            )
            .unwrap()
            .len();
    }
    outs
}

/// A brand-new directory (and an empty log file) recover to a blank,
/// usable engine.
#[test]
fn empty_log_recovers_to_blank_engine() {
    let dir = fresh_dir("empty");
    {
        let d = DurableEngine::open(&dir, opts(), build).unwrap();
        assert!(!d.recovery().recovered);
        assert_eq!(d.engine().rule_count(), 0);
    }
    // Re-open with only the header record present: recovered, nothing
    // replayed.
    let d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(d.recovery().recovered);
    assert_eq!(d.recovery().replayed_records, 0);
    assert_eq!(d.recovery().torn_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot at the exact end of the log: recovery restores state with
/// zero full-replay suffix and the engine continues correctly.
#[test]
fn snapshot_with_no_suffix() {
    let dir = fresh_dir("nosuffix");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        assert_eq!(feed(&mut d, 5, 0), 5);
        d.snapshot_now().unwrap();
    }
    let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(d.recovery().used_snapshot);
    assert_eq!(
        d.recovery().replayed_records,
        0,
        "snapshot covers the whole log; no full-replay suffix"
    );
    assert_eq!(d.engine().rule_count(), 1);
    assert_eq!(d.engine().metrics.rules_fired, 5, "metrics restored");
    assert_eq!(feed(&mut d, 1, 5), 1, "engine is live after recovery");
    std::fs::remove_dir_all(&dir).ok();
}

/// A length prefix that is itself truncated (fewer than the 8 header
/// bytes, so its CRC cannot even be read) is a torn tail: discarded,
/// healed, not a panic.
#[test]
fn truncated_length_prefix_is_discarded() {
    let dir = fresh_dir("shortlen");
    let valid_len;
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 3, 0);
        valid_len = d.wal_len();
    }
    // Append 3 bytes: a length prefix cut off mid-write.
    let wal = dir.join("wal.log");
    {
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0x40, 0x00, 0x00]).unwrap();
    }
    let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert_eq!(d.recovery().torn_bytes, 3);
    assert_eq!(d.wal_len(), valid_len, "file truncated back to boundary");
    assert_eq!(d.engine().metrics.rules_fired, 3);
    assert_eq!(feed(&mut d, 1, 3), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A CRC-valid length prefix whose payload is cut short is equally a
/// torn tail.
#[test]
fn truncated_payload_is_discarded() {
    let dir = fresh_dir("shortpay");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 4, 0);
    }
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    // Chop the last 5 bytes: final record's payload is now shorter than
    // its (intact, CRC-carrying) header claims.
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();
    let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(d.recovery().torn_bytes > 0);
    assert_eq!(
        d.engine().metrics.rules_fired,
        3,
        "last receive discarded with its record"
    );
    assert_eq!(feed(&mut d, 1, 4), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted (bit-flipped) record mid-file ends the trusted prefix at
/// the corruption point: everything before it recovers.
#[test]
fn corrupt_record_ends_the_trusted_prefix() {
    let dir = fresh_dir("bitflip");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 4, 0);
    }
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let last = bytes.len() - 2;
    bytes[last] ^= 0x10;
    std::fs::write(&wal, &bytes).unwrap();
    let d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(d.recovery().torn_bytes > 0);
    assert_eq!(d.engine().metrics.rules_fired, 3);
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot pointing past the end of the log means the log lost
/// records *after* the snapshot was taken. Recovery must refuse loudly —
/// replaying would silently drop those events.
#[test]
fn snapshot_newer_than_log_is_an_error() {
    let dir = fresh_dir("snapahead");
    let before_last;
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 4, 0);
        before_last = d.wal_len();
        feed(&mut d, 2, 4);
        d.snapshot_now().unwrap(); // snapshot references the full log
    }
    // "Lose" the tail the snapshot depends on (e.g. a restored-from-
    // backup log file): cut cleanly at an earlier record boundary.
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..before_last as usize]).unwrap();
    let err = DurableEngine::open(&dir, opts(), build).expect_err("must refuse");
    match &err {
        PersistError::Corrupt(msg) => {
            assert!(msg.contains("newer than the log"), "got: {msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The degenerate variant: a snapshot exists but the log is gone
/// entirely. Also a loud error, not a fresh start.
#[test]
fn snapshot_with_missing_log_is_an_error() {
    let dir = fresh_dir("snaplogless");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 2, 0);
        d.snapshot_now().unwrap();
    }
    std::fs::remove_file(dir.join("wal.log")).unwrap();
    let err = DurableEngine::open(&dir, opts(), build).expect_err("must refuse");
    assert!(matches!(err, PersistError::Corrupt(_)), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A half-written snapshot (no terminator — crash mid-snapshot) is
/// ignored in favor of full log replay, and the next snapshot repairs
/// it.
#[test]
fn incomplete_snapshot_falls_back_to_genesis_replay() {
    let dir = fresh_dir("snaptorn");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
        feed(&mut d, 3, 0);
        d.snapshot_now().unwrap();
    }
    let snap = dir.join("snapshot.bin");
    let bytes = std::fs::read(&snap).unwrap();
    std::fs::write(&snap, &bytes[..bytes.len() - 6]).unwrap();
    let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(!d.recovery().used_snapshot, "torn snapshot ignored");
    assert_eq!(d.recovery().replayed_records, 4, "full genesis replay");
    assert_eq!(d.engine().metrics.rules_fired, 3);
    d.snapshot_now().unwrap();
    let d2 = DurableEngine::open(&dir, opts(), build).unwrap();
    assert!(d2.recovery().used_snapshot, "fresh snapshot readable again");
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovering a log with a differently shaped engine is refused.
#[test]
fn engine_shape_mismatch_is_refused() {
    use reweb_core::ShardedEngine;
    let dir = fresh_dir("shape");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.install_program(PROGRAM).unwrap();
    }
    let err = DurableEngine::open(&dir, opts(), || ShardedEngine::new("http://node", 2))
        .expect_err("shape mismatch");
    assert!(matches!(err, PersistError::Corrupt(_)));
    std::fs::remove_dir_all(&dir).ok();
}

/// `put_resource` is logged and replayed, and versions survive exactly.
#[test]
fn put_resource_round_trips_with_versions() {
    let dir = fresh_dir("puts");
    {
        let mut d = DurableEngine::open(&dir, opts(), build).unwrap();
        d.put_resource("http://data/doc", parse_term("doc[v[\"1\"]]").unwrap())
            .unwrap();
        d.put_resource("http://data/doc", parse_term("doc[v[\"2\"]]").unwrap())
            .unwrap();
        d.snapshot_now().unwrap();
        d.put_resource("http://data/doc", parse_term("doc[v[\"3\"]]").unwrap())
            .unwrap();
    }
    let d = DurableEngine::open(&dir, opts(), build).unwrap();
    let e = d.engine();
    assert_eq!(
        e.qe.store.get("http://data/doc").unwrap().to_string(),
        "doc[v[\"3\"]]"
    );
    assert_eq!(e.qe.store.version("http://data/doc"), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}
