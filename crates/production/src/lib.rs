//! # reweb-production — the production-rule (Condition-Action) baseline
//!
//! Thesis 1 argues that ECA rules suit the Web better than production
//! rules. To *measure* that (experiment E1), the production-rule model the
//! paper contrasts with must exist. This crate provides it:
//!
//! * [`CaRule`] — `IF condition DO action` over the same stores, query
//!   language, and action language as the ECA engine.
//! * [`ProductionEngine`] — a recognize-act cycle: conditions are
//!   re-evaluated against the fact base; a rule fires **once per newly
//!   satisfied binding** (the paper's footnote 4: "the production rule
//!   fires only once, when the condition becomes true"), and firing
//!   continues to quiescence. Because CA rules cannot see events, the
//!   engine must be *driven* — re-run after every state change or poll
//!   tick — which is exactly the cost E1 quantifies.
//! * [`derive_eca`] — the footnote-4 translation of a CA rule into the
//!   ECA rule `on any-event if C do A`, together with tests demonstrating
//!   when the two are and are not equivalent (idempotence of the action,
//!   persistence of the condition).

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use reweb_core::EcaRule;
use reweb_events::EventQuery;
use reweb_query::{Bindings, Condition, QueryEngine, QueryTerm};
use reweb_update::{Action, Executor, OutMessage, ProcedureDef};

/// A production (Condition-Action) rule: `IF condition DO action`.
#[derive(Clone, Debug, PartialEq)]
pub struct CaRule {
    /// Rule name (diagnostics and fired-set keys).
    pub name: String,
    /// The `IF` part: a query over the fact base.
    pub condition: Condition,
    /// The `DO` part, executed once per new satisfaction.
    pub action: Action,
}

impl CaRule {
    /// A named Condition-Action rule.
    pub fn new(name: impl Into<String>, condition: Condition, action: Action) -> CaRule {
        CaRule {
            name: name.into(),
            condition,
            action,
        }
    }
}

impl fmt::Display for CaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IF {} DO {}", self.condition, self.action)
    }
}

/// Counters for experiment E1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProductionMetrics {
    /// Recognize-act cycles executed.
    pub cycles: u64,
    /// Condition evaluations — each is a full query over the fact base.
    pub condition_evals: u64,
    /// New (rule, bindings) satisfactions whose action ran.
    pub rules_fired: u64,
    /// Actions that raised an [`reweb_update::ActionError`].
    pub actions_failed: u64,
    /// Human-readable records of every failure.
    pub errors: Vec<String>,
}

/// A forward-chaining production-rule engine over a resource store.
pub struct ProductionEngine {
    /// The fact base the conditions query and the actions update.
    pub qe: QueryEngine,
    rules: Vec<CaRule>,
    procedures: BTreeMap<String, ProcedureDef>,
    /// (rule, bindings) pairs that already fired — the "fires only once
    /// when the condition becomes true" semantics.
    fired: BTreeSet<(String, Bindings)>,
    /// Counters for experiment E1.
    pub metrics: ProductionMetrics,
}

impl ProductionEngine {
    /// An engine with an empty fact base and no rules.
    pub fn new() -> ProductionEngine {
        ProductionEngine {
            qe: QueryEngine::new(),
            rules: Vec::new(),
            procedures: BTreeMap::new(),
            fired: BTreeSet::new(),
            metrics: ProductionMetrics::default(),
        }
    }

    /// Install a rule; it participates from the next cycle on.
    pub fn add_rule(&mut self, r: CaRule) {
        self.rules.push(r);
    }

    /// Register a named procedure callable from `CALL` actions.
    pub fn add_procedure(&mut self, p: ProcedureDef) {
        self.procedures.insert(p.name.clone(), p);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Run recognize-act cycles to quiescence. Must be called after every
    /// state change — production rules have no events to wake them up.
    pub fn run_to_quiescence(&mut self) -> Vec<OutMessage> {
        const MAX_CYCLES: u64 = 10_000;
        let mut out = Vec::new();
        loop {
            self.metrics.cycles += 1;
            if self.metrics.cycles > MAX_CYCLES {
                self.metrics
                    .errors
                    .push("production engine did not reach quiescence".into());
                return out;
            }
            let mut fired_any = false;
            for i in 0..self.rules.len() {
                let rule = self.rules[i].clone();
                self.metrics.condition_evals += 1;
                let answers = match self.qe.eval_condition(&rule.condition, &Bindings::new()) {
                    Ok(a) => a,
                    Err(e) => {
                        self.metrics.errors.push(format!("rule {}: {e}", rule.name));
                        continue;
                    }
                };
                for b in answers {
                    if !self.fired.insert((rule.name.clone(), b.clone())) {
                        continue; // this satisfaction already fired
                    }
                    fired_any = true;
                    self.metrics.rules_fired += 1;
                    let mut ex = Executor::new(&mut self.qe, &self.procedures);
                    if let Err(e) = ex.execute(&rule.action, &b) {
                        self.metrics.actions_failed += 1;
                        self.metrics
                            .errors
                            .push(format!("rule {}: action failed: {e}", rule.name));
                    }
                    out.extend(ex.outbox);
                }
            }
            if !fired_any {
                return out;
            }
        }
    }
}

impl Default for ProductionEngine {
    fn default() -> Self {
        ProductionEngine::new()
    }
}

/// Footnote 4: express the production rule `IF C DO A` as the ECA rule
/// `ON any-event IF C DO A`, where the event query matches *every* event.
///
/// The paper is careful: this is **not** equivalent in general. The ECA
/// rule fires on every event while the condition holds; the production
/// rule fires once per new satisfaction. They coincide only when the
/// action is idempotent and the condition is not un-made and re-made —
/// see the `derive_eca_*` tests.
pub fn derive_eca(ca: &CaRule) -> EcaRule {
    EcaRule::new(
        format!("{}__as_eca", ca.name),
        EventQuery::atomic(QueryTerm::var("AnyEvent")),
        ca.condition.clone(),
        ca.action.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_core::{MessageMeta, ReactiveEngine};
    use reweb_query::parser::{parse_condition, parse_construct_term, parse_query_term};
    use reweb_term::{parse_term, Term, Timestamp};
    use reweb_update::Update;

    fn grant_rule() -> CaRule {
        // The paper's credit-card example, production style: grant when an
        // application with sufficient income and no debts is on file.
        CaRule::new(
            "grant_card",
            parse_condition(
                "in \"http://bank/applications\" application{{id[[var A]], income[[var I]]}} \
                 and not in \"http://bank/debts\" debt{{applicant[[var A]]}} \
                 and var I >= 1500",
            )
            .unwrap(),
            Action::Persist {
                resource: "http://bank/granted".into(),
                payload: parse_construct_term("granted[var A]").unwrap(),
            },
        )
    }

    fn bank_engine() -> ProductionEngine {
        let mut e = ProductionEngine::new();
        e.qe.store.put(
            "http://bank/applications",
            parse_term("applications[]").unwrap(),
        );
        e.qe.store
            .put("http://bank/debts", parse_term("debts[]").unwrap());
        e.add_rule(grant_rule());
        e
    }

    fn file_application(e: &mut QueryEngine, id: &str, income: &str) {
        let u = Update::insert(
            "http://bank/applications",
            parse_query_term("applications[[]]").unwrap(),
            parse_construct_term(&format!(
                "application{{id[\"{id}\"], income[\"{income}\"]}}"
            ))
            .unwrap(),
        );
        reweb_update::apply_update(&mut e.store, &u, &Bindings::new()).unwrap();
    }

    #[test]
    fn fires_once_when_condition_becomes_true() {
        let mut e = bank_engine();
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 0);
        file_application(&mut e.qe, "a1", "2000");
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 1);
        // Re-running without a state change must not re-fire.
        e.run_to_quiescence();
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 1);
        let granted = e.qe.store.get("http://bank/granted").unwrap();
        assert_eq!(granted.children().len(), 1);
    }

    #[test]
    fn below_threshold_never_fires() {
        let mut e = bank_engine();
        file_application(&mut e.qe, "a1", "900");
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 0);
    }

    #[test]
    fn chained_firing_runs_to_quiescence() {
        // Rule 1 derives a fact that satisfies rule 2.
        let mut e = ProductionEngine::new();
        e.qe.store
            .put("http://f", parse_term("facts[seed]").unwrap());
        e.add_rule(CaRule::new(
            "step1",
            parse_condition("in \"http://f\" seed").unwrap(),
            Action::Persist {
                resource: "http://f2".into(),
                payload: parse_construct_term("middle").unwrap(),
            },
        ));
        e.add_rule(CaRule::new(
            "step2",
            parse_condition("in \"http://f2\" middle").unwrap(),
            Action::Persist {
                resource: "http://f3".into(),
                payload: parse_construct_term("done").unwrap(),
            },
        ));
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 2);
        assert!(e.qe.store.contains("http://f3"));
        // Quiescence took more than one cycle (chaining), then stopped.
        assert!(e.metrics.cycles >= 2);
    }

    #[test]
    fn condition_evals_grow_with_polling_not_with_events() {
        // The E1 effect in miniature: every drive of the production engine
        // costs one condition evaluation per rule, events or not.
        let mut e = bank_engine();
        for _ in 0..10 {
            e.run_to_quiescence(); // ten "poll ticks" with nothing new
        }
        assert_eq!(e.metrics.condition_evals, 10); // 1 rule × 10 drives
        assert_eq!(e.metrics.rules_fired, 0);
    }

    #[test]
    fn derive_eca_equivalent_for_idempotent_action() {
        // ECA twin: on any event, if condition then grant. The Persist
        // action is NOT idempotent (it appends), so to show equivalence we
        // compare the *set* of granted applicants, checking duplicates
        // separately below.
        let ca = grant_rule();
        let eca = derive_eca(&ca);
        let mut engine = ReactiveEngine::new("http://bank");
        engine.qe.store.put(
            "http://bank/applications",
            parse_term("applications[application{id[\"a1\"], income[\"2000\"]}]").unwrap(),
        );
        engine
            .qe
            .store
            .put("http://bank/debts", parse_term("debts[]").unwrap());
        engine.add_rule(eca);
        let meta = MessageMeta::from_uri("http://x");
        engine.receive(Term::elem("tick"), &meta, Timestamp(1));
        let granted = engine.qe.store.get("http://bank/granted").unwrap();
        assert_eq!(granted.children().len(), 1, "same grant as production");
    }

    #[test]
    fn derive_eca_not_equivalent_without_idempotence() {
        // The paper's caveat: the ECA rule fires on EVERY event while the
        // condition holds. Two ticks → two grants, where the production
        // rule granted once.
        let ca = grant_rule();
        let mut engine = ReactiveEngine::new("http://bank");
        engine.qe.store.put(
            "http://bank/applications",
            parse_term("applications[application{id[\"a1\"], income[\"2000\"]}]").unwrap(),
        );
        engine
            .qe
            .store
            .put("http://bank/debts", parse_term("debts[]").unwrap());
        engine.add_rule(derive_eca(&ca));
        let meta = MessageMeta::from_uri("http://x");
        engine.receive(Term::elem("tick"), &meta, Timestamp(1));
        engine.receive(Term::elem("tick"), &meta, Timestamp(2));
        let granted = engine.qe.store.get("http://bank/granted").unwrap();
        assert_eq!(
            granted.children().len(),
            2,
            "non-idempotent action fired twice — footnote 4's inequivalence"
        );
    }

    #[test]
    fn negation_unfires_are_not_retracted() {
        // Classic production-rule subtlety: once fired, a firing is not
        // undone when the condition later becomes false.
        let mut e = bank_engine();
        file_application(&mut e.qe, "a1", "2000");
        e.run_to_quiescence();
        assert_eq!(e.metrics.rules_fired, 1);
        // A debt appears — the condition is now false, but the grant stays.
        let u = Update::insert(
            "http://bank/debts",
            parse_query_term("debts[[]]").unwrap(),
            parse_construct_term("debt{applicant[\"a1\"]}").unwrap(),
        );
        reweb_update::apply_update(&mut e.qe.store, &u, &Bindings::new()).unwrap();
        e.run_to_quiescence();
        assert!(e.qe.store.contains("http://bank/granted"));
        assert_eq!(e.metrics.rules_fired, 1);
    }
}
