//! The TCP ingress server: accept loop, per-connection reader/writer
//! threads, and the single engine-driver thread.
//!
//! ```text
//!   client ──TCP──▶ reader thread ──▶ IngressQueue ──▶ driver thread ──▶ engine
//!      ▲                │  (admission: rate limit,      │ (batches, tagged
//!      │                │   body limit, queue bound)    │  ingestion)
//!      └── writer thread ◀────────── reply frames ◀─────┘
//! ```
//!
//! Threading contract: every connection gets one reader and one writer
//! thread; exactly one driver thread owns batch formation and calls the
//! engine (behind a mutex, so [`NetServer::with_engine`] can inspect it
//! between batches). Faults — malformed frames, oversized bodies, slow
//! readers, mid-batch disconnects — degrade *that connection only*: the
//! reader closes or the reply is dropped, while the queue, the driver,
//! and every other connection keep running.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use reweb_core::{EngineMetrics, InMessage, OutMessage, ReactiveEngine, ShardedEngine};
use reweb_persist::{DurableEngine, Recoverable};
use reweb_term::frame::{crc32, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use reweb_term::Timestamp;

use crate::delivery::{DeliveryHandle, DeliveryLedger};
use crate::limit::{Admission, BackoffPolicy, TokenBucket};
use crate::router::{IngressQueue, Item, LanePush, NetConfig, ReplyClass, ReplyLane};
use crate::wire::{event_to_message, ErrorCode, Reply, Request};

/// Any engine the ingress tier can drive: one ingestion surface over
/// [`ReactiveEngine`], [`ShardedEngine`], and both durable wrappers.
/// The tagged ingestion call is what lets the driver route each
/// reaction back to the connection whose event produced it.
pub trait IngressEngine: Send {
    /// Shape descriptor reported in the `welcome` reply (diagnostics).
    fn descriptor(&self) -> String;
    /// Install a rule program (startup configuration; rules can also
    /// arrive as `install_rules` events, Thesis 11).
    fn install_source(&mut self, src: &str) -> Result<(), String>;
    /// Ingest one batch; each output is tagged with the index of the
    /// batch message that produced it.
    fn ingest_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>, String>;
    /// Advance the engine clock, firing due absence deadlines.
    fn advance_clock(&mut self, at: Timestamp) -> Result<Vec<OutMessage>, String>;
    /// Aggregated engine metrics (all shards where applicable).
    fn metrics(&self) -> EngineMetrics;
    /// The engine's observability handle (shared across shards).
    fn obs(&self) -> Arc<reweb_obs::Obs>;
    /// Swap in a shared observability handle (normally via
    /// [`NetServer::set_obs`], which keeps the server's mirror in sync).
    fn set_obs(&mut self, obs: Arc<reweb_obs::Obs>);
}

impl IngressEngine for ReactiveEngine {
    fn descriptor(&self) -> String {
        "single".into()
    }
    fn install_source(&mut self, src: &str) -> Result<(), String> {
        self.install_program(src).map_err(|e| e.to_string())
    }
    fn ingest_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>, String> {
        Ok(self.receive_batch_tagged(msgs))
    }
    fn advance_clock(&mut self, at: Timestamp) -> Result<Vec<OutMessage>, String> {
        Ok(self.advance_time(at))
    }
    fn metrics(&self) -> EngineMetrics {
        self.metrics.clone()
    }
    fn obs(&self) -> Arc<reweb_obs::Obs> {
        Arc::clone(ReactiveEngine::obs(self))
    }
    fn set_obs(&mut self, obs: Arc<reweb_obs::Obs>) {
        ReactiveEngine::set_obs(self, obs);
    }
}

impl IngressEngine for ShardedEngine {
    fn descriptor(&self) -> String {
        Recoverable::descriptor(self)
    }
    fn install_source(&mut self, src: &str) -> Result<(), String> {
        self.install_program(src).map_err(|e| e.to_string())
    }
    fn ingest_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>, String> {
        self.try_receive_batch_tagged(msgs)
            .map_err(|e| e.to_string())
    }
    fn advance_clock(&mut self, at: Timestamp) -> Result<Vec<OutMessage>, String> {
        self.try_advance_time(at).map_err(|e| e.to_string())
    }
    fn metrics(&self) -> EngineMetrics {
        ShardedEngine::metrics(self)
    }
    fn obs(&self) -> Arc<reweb_obs::Obs> {
        Arc::clone(ShardedEngine::obs(self))
    }
    fn set_obs(&mut self, obs: Arc<reweb_obs::Obs>) {
        ShardedEngine::set_obs(self, obs);
    }
}

impl IngressEngine for DurableEngine<ReactiveEngine> {
    fn descriptor(&self) -> String {
        format!("durable:{}", Recoverable::descriptor(self.engine()))
    }
    fn install_source(&mut self, src: &str) -> Result<(), String> {
        self.install_program(src).map_err(|e| e.to_string())
    }
    fn ingest_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>, String> {
        self.receive_batch_tagged(msgs).map_err(|e| e.to_string())
    }
    fn advance_clock(&mut self, at: Timestamp) -> Result<Vec<OutMessage>, String> {
        self.advance_time(at).map_err(|e| e.to_string())
    }
    fn metrics(&self) -> EngineMetrics {
        self.engine().metrics.clone()
    }
    fn obs(&self) -> Arc<reweb_obs::Obs> {
        Arc::clone(DurableEngine::obs(self))
    }
    fn set_obs(&mut self, obs: Arc<reweb_obs::Obs>) {
        DurableEngine::set_obs(self, obs);
    }
}

impl IngressEngine for DurableEngine<ShardedEngine> {
    fn descriptor(&self) -> String {
        format!("durable:{}", Recoverable::descriptor(self.engine()))
    }
    fn install_source(&mut self, src: &str) -> Result<(), String> {
        self.install_program(src).map_err(|e| e.to_string())
    }
    fn ingest_tagged(&mut self, msgs: &[InMessage]) -> Result<Vec<(u32, OutMessage)>, String> {
        self.receive_batch_tagged(msgs).map_err(|e| e.to_string())
    }
    fn advance_clock(&mut self, at: Timestamp) -> Result<Vec<OutMessage>, String> {
        self.advance_time(at).map_err(|e| e.to_string())
    }
    fn metrics(&self) -> EngineMetrics {
        self.engine().metrics()
    }
    fn obs(&self) -> Arc<reweb_obs::Obs> {
        Arc::clone(DurableEngine::obs(self))
    }
    fn set_obs(&mut self, obs: Arc<reweb_obs::Obs>) {
        DurableEngine::set_obs(self, obs);
    }
}

/// Monotone ingress counters, updated with relaxed atomics on the hot
/// paths and snapshotted via [`NetServer::stats`].
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_open: AtomicU64,
    connections_refused: AtomicU64,
    deliveries_ingested: AtomicU64,
    deliveries_duplicate: AtomicU64,
    frames_in: AtomicU64,
    msgs_enqueued: AtomicU64,
    msgs_processed: AtomicU64,
    batches: AtomicU64,
    reactions_out: AtomicU64,
    replies_dropped: AtomicU64,
    busy_replies: AtomicU64,
    throttled_replies: AtomicU64,
    envelope_errors: AtomicU64,
    framing_errors: AtomicU64,
    engine_errors: AtomicU64,
    queue_highwater: AtomicU64,
}

/// A point-in-time snapshot of the ingress tier's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Connections ever accepted.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_open: u64,
    /// Connections refused at accept by the `max_connections` cap
    /// (`error{code["busy"]}` sent, socket closed before any `hello`).
    pub connections_refused: u64,
    /// Pushed deliveries ingested (first sight of their key).
    pub deliveries_ingested: u64,
    /// Pushed deliveries recognized as retries of an already-ingested
    /// key and acked without re-ingestion.
    pub deliveries_duplicate: u64,
    /// Frames successfully read off sockets (any request kind).
    pub frames_in: u64,
    /// Events admitted into the ingress queue.
    pub msgs_enqueued: u64,
    /// Events the driver has handed to the engine.
    pub msgs_processed: u64,
    /// Engine batches the driver has run.
    pub batches: u64,
    /// Reaction replies produced (written or dropped).
    pub reactions_out: u64,
    /// Replies dropped because a connection's reply buffer was full (a
    /// slow reader) or the connection was already gone (a mid-batch
    /// disconnect).
    pub replies_dropped: u64,
    /// `busy` backpressure replies sent (global queue full).
    pub busy_replies: u64,
    /// `throttled` backpressure replies sent (per-client rate limit).
    pub throttled_replies: u64,
    /// `bad-envelope`/`not-gateway` faults (session survived).
    pub envelope_errors: u64,
    /// Framing faults (CRC mismatch, oversized, truncated — connection
    /// closed).
    pub framing_errors: u64,
    /// Batches the engine refused.
    pub engine_errors: u64,
    /// Highest ingress queue depth observed.
    pub queue_highwater: u64,
    /// Current ingress queue depth.
    pub queue_depth: u64,
}

/// One registered connection's reply path.
struct ClientHandle {
    lane: Arc<ReplyLane>,
}

/// State shared by every server thread.
struct Shared {
    cfg: NetConfig,
    engine: Mutex<Box<dyn IngressEngine>>,
    queue: IngressQueue,
    clients: Mutex<HashMap<u64, ClientHandle>>,
    counters: Counters,
    shutdown: AtomicBool,
    next_client: AtomicU64,
    /// Ingested delivery keys (+ optional journal): the receiver half
    /// of at-least-once deduplication. Touched only by the driver and
    /// by inspection calls.
    ledger: Mutex<DeliveryLedger>,
    /// When attached, every reaction the engine emits is also handed to
    /// the delivery agent for outbound push.
    delivery: Mutex<Option<DeliveryHandle>>,
    /// Mirror of the serving engine's observability handle, so `stats`
    /// and `trace` requests (and queue-wait stamping) never take the
    /// engine lock — observability stays readable while the driver is
    /// mid-batch.
    obs: Mutex<Arc<reweb_obs::Obs>>,
}

impl Shared {
    /// Route one encoded reply frame to a connection's writer lane.
    /// Never blocks: a full data buffer (slow reader), a closed lane, or
    /// a vanished connection (mid-batch disconnect) counts a dropped
    /// reply and moves on. Reactions are [`ReplyClass::Data`]; protocol
    /// replies are [`ReplyClass::Control`] and only drop when the
    /// connection itself is gone.
    /// The current observability handle (cheap: mutex + Arc clone, no
    /// engine lock).
    fn obs(&self) -> Arc<reweb_obs::Obs> {
        Arc::clone(&self.obs.lock().expect("obs handle poisoned"))
    }

    fn send_to(&self, client: u64, class: ReplyClass, frame: Vec<u8>) {
        let clients = self.clients.lock().expect("client registry poisoned");
        match clients.get(&client) {
            Some(h) => {
                if h.lane.push(class, frame) == LanePush::Dropped {
                    self.counters
                        .replies_dropped
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                self.counters
                    .replies_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A running TCP ingress server. Dropping it (or calling
/// [`NetServer::shutdown`]) stops accepting, finishes queued work, and
/// joins every thread.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    driver: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving `engine` under `cfg`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: impl IngressEngine + 'static,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let ledger = match &cfg.delivery_journal {
            Some(path) => DeliveryLedger::open(path)?,
            None => DeliveryLedger::in_memory(),
        };
        let obs = engine.obs();
        let shared = Arc::new(Shared {
            queue: IngressQueue::new(cfg.queue_capacity),
            cfg,
            engine: Mutex::new(Box::new(engine)),
            clients: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_client: AtomicU64::new(1),
            ledger: Mutex::new(ledger),
            delivery: Mutex::new(None),
            obs: Mutex::new(obs),
        });
        let readers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::Builder::new()
                .name("reweb-net-accept".into())
                .spawn(move || accept_loop(listener, shared, readers))?
        };
        let driver = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("reweb-net-driver".into())
                .spawn(move || driver_loop(shared))?
        };
        Ok(NetServer {
            shared,
            addr,
            accept: Some(accept),
            driver: Some(driver),
            readers,
        })
    }

    /// The bound address (read the ephemeral port here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the ingress counters.
    pub fn stats(&self) -> IngressStats {
        let c = &self.shared.counters;
        IngressStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_open: c.connections_open.load(Ordering::Relaxed),
            connections_refused: c.connections_refused.load(Ordering::Relaxed),
            deliveries_ingested: c.deliveries_ingested.load(Ordering::Relaxed),
            deliveries_duplicate: c.deliveries_duplicate.load(Ordering::Relaxed),
            frames_in: c.frames_in.load(Ordering::Relaxed),
            msgs_enqueued: c.msgs_enqueued.load(Ordering::Relaxed),
            msgs_processed: c.msgs_processed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            reactions_out: c.reactions_out.load(Ordering::Relaxed),
            replies_dropped: c.replies_dropped.load(Ordering::Relaxed),
            busy_replies: c.busy_replies.load(Ordering::Relaxed),
            throttled_replies: c.throttled_replies.load(Ordering::Relaxed),
            envelope_errors: c.envelope_errors.load(Ordering::Relaxed),
            framing_errors: c.framing_errors.load(Ordering::Relaxed),
            engine_errors: c.engine_errors.load(Ordering::Relaxed),
            queue_highwater: c.queue_highwater.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.depth() as u64,
        }
    }

    /// Run `f` against the serving engine. The driver takes the same
    /// lock per batch, so this sees a consistent state between batches
    /// — use it to install programs at startup or to read metrics in
    /// tests; holding it stalls ingestion.
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut dyn IngressEngine) -> R) -> R {
        let mut guard: MutexGuard<'_, Box<dyn IngressEngine>> =
            self.shared.engine.lock().expect("engine mutex poisoned");
        f(guard.as_mut())
    }

    /// Attach a delivery agent: from now on every reaction the engine
    /// emits is *also* queued for outbound push to the destination its
    /// `to[...]` names (the submitter still gets its `reaction` reply).
    /// The agent inherits the server's observability handle, so
    /// delivery round-trips land in the same histograms `stats`
    /// reports.
    pub fn attach_delivery(&self, handle: DeliveryHandle) {
        handle.set_obs(self.shared.obs());
        *self
            .shared
            .delivery
            .lock()
            .expect("delivery handle poisoned") = Some(handle);
    }

    /// Swap in a shared observability handle: forwarded to the serving
    /// engine, mirrored for the lock-free `stats`/`trace` surface, and
    /// propagated to an attached delivery agent. Call before serving
    /// traffic — connections opened earlier keep stamping queue-wait
    /// against the handle they saw at handshake. (Toggling
    /// `enable`/`disable` on an already-installed handle needs no
    /// re-install: the flag lives inside the shared `Obs`.)
    pub fn set_obs(&self, obs: Arc<reweb_obs::Obs>) {
        self.with_engine(|e| e.set_obs(Arc::clone(&obs)));
        if let Some(h) = self
            .shared
            .delivery
            .lock()
            .expect("delivery handle poisoned")
            .as_ref()
        {
            h.set_obs(Arc::clone(&obs));
        }
        *self.shared.obs.lock().expect("obs handle poisoned") = obs;
    }

    /// The server's observability handle (the serving engine's, unless
    /// [`NetServer::set_obs`] swapped in another).
    pub fn obs(&self) -> Arc<reweb_obs::Obs> {
        self.shared.obs()
    }

    /// The receiver-side delivery ledger: every pushed reaction this
    /// server ingested, `(key, payload)` in ingestion order. The
    /// byte-equality surface of the two-node tests.
    pub fn delivered(&self) -> Vec<(String, reweb_term::Term)> {
        self.shared
            .ledger
            .lock()
            .expect("delivery ledger poisoned")
            .entries()
            .to_vec()
    }

    /// Stop accepting, drain the queue, join every thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
        // Readers notice the shutdown flag within their poll interval,
        // close their reply lanes (ending the writers), and exit.
        self.shared
            .clients
            .lock()
            .expect("client registry poisoned")
            .clear();
        let handles: Vec<_> = {
            let mut r = self.readers.lock().expect("reader registry poisoned");
            r.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Milliseconds since the UNIX epoch — the stamp for events that omit
/// `at`. The driver clamps the ingress clock monotone regardless.
fn wall_clock() -> Timestamp {
    Timestamp(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    )
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Connection cap: refuse before spawning anything. The
                // refusal is a complete, well-formed error reply — the
                // client learns *why* and *when to come back*, instead
                // of diagnosing a bare RST.
                if let Some(cap) = shared.cfg.max_connections {
                    let open = shared.counters.connections_open.load(Ordering::Relaxed);
                    if open >= cap as u64 {
                        shared
                            .counters
                            .connections_refused
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                        send_direct(
                            &mut stream,
                            &Reply::Error {
                                code: ErrorCode::Busy,
                                detail: format!("connection cap {cap} reached"),
                                id: None,
                                retry_ms: Some(BackoffPolicy::BUSY.delay_ms(0)),
                            },
                        );
                        continue;
                    }
                }
                let _ = stream.set_nodelay(true);
                let client = shared.next_client.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .connections_open
                    .fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("reweb-net-conn-{client}"))
                    .spawn(move || {
                        connection_loop(stream, client, &shared2);
                        shared2
                            .counters
                            .connections_open
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                match handle {
                    Ok(h) => readers.lock().expect("reader registry poisoned").push(h),
                    Err(_) => {
                        // Thread spawn failed (resource exhaustion):
                        // the connection is simply dropped.
                        shared
                            .counters
                            .connections_open
                            .fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// How one read attempt ended.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// Clean EOF before the first byte.
    Eof,
    /// EOF mid-buffer: a truncated frame.
    Truncated,
    /// The server is shutting down.
    Shutdown,
    /// A socket error.
    Failed,
}

/// Fill `buf` from `stream`, polling the shutdown flag between reads.
/// The stream must have a read timeout set (the poll interval).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Truncated
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return ReadOutcome::Shutdown;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Full
}

/// What reading one frame produced.
enum FrameRead {
    /// A CRC-verified payload.
    Payload(Vec<u8>),
    /// Close the connection, optionally after a best-effort error
    /// reply.
    Close(Option<(ErrorCode, String)>),
}

/// Read and verify one frame. Oversized headers are rejected *before*
/// the body is read or buffered (the body-limit pattern).
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match read_full(stream, &mut header, shared) {
        ReadOutcome::Full => {}
        ReadOutcome::Eof | ReadOutcome::Shutdown | ReadOutcome::Failed => {
            return FrameRead::Close(None)
        }
        ReadOutcome::Truncated => {
            shared
                .counters
                .framing_errors
                .fetch_add(1, Ordering::Relaxed);
            return FrameRead::Close(Some((
                ErrorCode::MalformedFrame,
                "truncated frame header".into(),
            )));
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN || len as usize > shared.cfg.max_body {
        shared
            .counters
            .framing_errors
            .fetch_add(1, Ordering::Relaxed);
        return FrameRead::Close(Some((
            ErrorCode::OversizedFrame,
            format!(
                "frame of {len} bytes exceeds max_body {}",
                shared.cfg.max_body
            ),
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, shared) {
        ReadOutcome::Full => {}
        ReadOutcome::Shutdown => return FrameRead::Close(None),
        _ => {
            shared
                .counters
                .framing_errors
                .fetch_add(1, Ordering::Relaxed);
            return FrameRead::Close(Some((
                ErrorCode::MalformedFrame,
                "truncated frame payload".into(),
            )));
        }
    }
    if crc32(&payload) != crc {
        shared
            .counters
            .framing_errors
            .fetch_add(1, Ordering::Relaxed);
        return FrameRead::Close(Some((
            ErrorCode::MalformedFrame,
            "frame CRC mismatch".into(),
        )));
    }
    shared.counters.frames_in.fetch_add(1, Ordering::Relaxed);
    FrameRead::Payload(payload)
}

/// Write a reply straight to the socket — used before the writer thread
/// exists (handshake) and for final error replies. Best effort.
fn send_direct(stream: &mut TcpStream, reply: &Reply) {
    let _ = stream.write_all(&reply.encode());
}

/// One connection, handshake to close. Runs on the connection's reader
/// thread; spawns the paired writer thread after a successful `hello`.
fn connection_loop(mut stream: TcpStream, client: u64, shared_arc: &Arc<Shared>) {
    let shared: &Shared = shared_arc;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));

    // Handshake: the first envelope must be a schema-matching `hello`.
    let (session_from, session_cred, gateway) = match read_frame(&mut stream, shared) {
        FrameRead::Payload(payload) => match Request::decode(&payload) {
            Ok(Request::Hello {
                from,
                credentials,
                gateway,
            }) => (from, credentials, gateway),
            Ok(_) => {
                shared
                    .counters
                    .envelope_errors
                    .fetch_add(1, Ordering::Relaxed);
                send_direct(
                    &mut stream,
                    &Reply::Error {
                        code: ErrorCode::NoHello,
                        detail: "first envelope must be hello".into(),
                        id: None,
                        retry_ms: None,
                    },
                );
                return;
            }
            Err(e) => {
                shared
                    .counters
                    .envelope_errors
                    .fetch_add(1, Ordering::Relaxed);
                let code = if e.0.contains("schema") {
                    ErrorCode::BadSchema
                } else {
                    ErrorCode::BadEnvelope
                };
                send_direct(
                    &mut stream,
                    &Reply::Error {
                        code,
                        detail: e.0,
                        id: None,
                        retry_ms: None,
                    },
                );
                return;
            }
        },
        FrameRead::Close(err) => {
            if let Some((code, detail)) = err {
                send_direct(
                    &mut stream,
                    &Reply::Error {
                        code,
                        detail,
                        id: None,
                        retry_ms: None,
                    },
                );
            }
            return;
        }
    };

    // Register the reply path and spawn the writer.
    let lane = Arc::new(ReplyLane::new(shared.cfg.reply_buffer));
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    shared
        .clients
        .lock()
        .expect("client registry poisoned")
        .insert(
            client,
            ClientHandle {
                lane: Arc::clone(&lane),
            },
        );
    let writer_handle = {
        let lane = Arc::clone(&lane);
        let shared2 = Arc::clone(shared_arc);
        std::thread::Builder::new()
            .name(format!("reweb-net-write-{client}"))
            .spawn(move || writer_loop(writer, lane, shared2))
    };
    let engine_desc = shared
        .engine
        .lock()
        .expect("engine mutex poisoned")
        .descriptor();
    lane.push(
        ReplyClass::Control,
        Reply::Welcome {
            schema: crate::wire::WIRE_SCHEMA.into(),
            engine: engine_desc,
        }
        .encode(),
    );

    let mut bucket = shared
        .cfg
        .rate_limit
        .map(|l| TokenBucket::new(l, Instant::now()));
    // Cached per connection: queue-wait stamping checks the enabled
    // flag on every event, and the flag lives inside the shared `Obs`.
    let obs = shared.obs();
    let reply = |r: &Reply| {
        // Session replies are control-class: they go through the writer
        // lane so they order after earlier reactions, and they are never
        // dropped while the lane is open.
        if lane.push(ReplyClass::Control, r.encode()) == LanePush::Dropped {
            shared
                .counters
                .replies_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    };

    let close_err = loop {
        let payload = match read_frame(&mut stream, shared) {
            FrameRead::Payload(p) => p,
            FrameRead::Close(err) => break err,
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared
                    .counters
                    .envelope_errors
                    .fetch_add(1, Ordering::Relaxed);
                reply(&Reply::Error {
                    code: ErrorCode::BadEnvelope,
                    detail: e.0,
                    id: None,
                    retry_ms: None,
                });
                continue;
            }
        };
        match req {
            Request::Hello { .. } => {
                shared
                    .counters
                    .envelope_errors
                    .fetch_add(1, Ordering::Relaxed);
                break Some((ErrorCode::NoHello, "hello repeated".into()));
            }
            Request::Bye => break None,
            Request::Sync { id } => {
                shared.queue.push_control(Item::Sync { client, id });
            }
            Request::Stats { id } => {
                // Answered inline from shared atomics — never queued
                // behind the engine, so stats stay readable under
                // ingress pressure.
                let body = shared.obs().stats_term();
                reply(&Reply::Stats { id, body });
            }
            Request::Trace { id, trace } => {
                let body = shared.obs().trace_term(trace);
                reply(&Reply::Trace { id, body });
            }
            Request::Advance { id, at } => {
                if shared.shutdown.load(Ordering::Acquire) {
                    reply(&Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "server is shutting down".into(),
                        id: Some(id),
                        retry_ms: Some(BackoffPolicy::BUSY.delay_ms(0)),
                    });
                    continue;
                }
                shared.queue.push_control(Item::Advance { client, id, at });
            }
            Request::Deliver {
                id,
                key,
                at,
                payload,
            } => {
                if shared.shutdown.load(Ordering::Acquire) {
                    reply(&Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "server is shutting down".into(),
                        id: Some(id),
                        retry_ms: Some(BackoffPolicy::BUSY.delay_ms(0)),
                    });
                    continue;
                }
                if let Some(b) = bucket.as_mut() {
                    if let Admission::Throttled { retry_ms } = b.admit(Instant::now()) {
                        shared
                            .counters
                            .throttled_replies
                            .fetch_add(1, Ordering::Relaxed);
                        reply(&Reply::Throttled { id, retry_ms });
                        continue;
                    }
                }
                // A pushed delivery is attributed to the pushing peer's
                // session identity; deduplication and the `accepted`
                // ack happen in the driver, *after* the batch runs.
                let msg = InMessage::new(
                    payload,
                    {
                        let mut m = reweb_core::MessageMeta::from_uri(session_from.clone());
                        if let Some(c) = &session_cred {
                            m = m.with_credentials(c.principal.clone(), c.secret.clone());
                        }
                        m
                    },
                    at.unwrap_or_else(wall_clock),
                );
                match shared.queue.push_event(Item::Msg {
                    client,
                    id,
                    msg,
                    key: Some(key),
                    enq: obs.is_enabled().then(Instant::now),
                }) {
                    Ok(depth) => {
                        shared
                            .counters
                            .msgs_enqueued
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .queue_highwater
                            .fetch_max(depth as u64, Ordering::Relaxed);
                    }
                    Err(full) => {
                        shared.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                        reply(&Reply::Busy {
                            id,
                            depth: full.depth,
                            capacity: full.capacity,
                            retry_ms: BackoffPolicy::BUSY.delay_ms(0),
                        });
                    }
                }
            }
            Request::Event {
                id,
                at,
                from,
                credentials,
                payload,
            } => {
                if shared.shutdown.load(Ordering::Acquire) {
                    reply(&Reply::Error {
                        code: ErrorCode::ShuttingDown,
                        detail: "server is shutting down".into(),
                        id: Some(id),
                        retry_ms: Some(BackoffPolicy::BUSY.delay_ms(0)),
                    });
                    continue;
                }
                if let Some(b) = bucket.as_mut() {
                    if let Admission::Throttled { retry_ms } = b.admit(Instant::now()) {
                        shared
                            .counters
                            .throttled_replies
                            .fetch_add(1, Ordering::Relaxed);
                        reply(&Reply::Throttled { id, retry_ms });
                        continue;
                    }
                }
                let msg = match event_to_message(
                    &session_from,
                    &session_cred,
                    gateway,
                    &from,
                    &credentials,
                    payload,
                    at.unwrap_or_else(wall_clock),
                ) {
                    Ok(m) => m,
                    Err(code) => {
                        shared
                            .counters
                            .envelope_errors
                            .fetch_add(1, Ordering::Relaxed);
                        reply(&Reply::Error {
                            code,
                            detail: "per-event from/cred requires a gateway session".into(),
                            id: Some(id),
                            retry_ms: None,
                        });
                        continue;
                    }
                };
                match shared.queue.push_event(Item::Msg {
                    client,
                    id,
                    msg,
                    key: None,
                    enq: obs.is_enabled().then(Instant::now),
                }) {
                    Ok(depth) => {
                        shared
                            .counters
                            .msgs_enqueued
                            .fetch_add(1, Ordering::Relaxed);
                        shared
                            .counters
                            .queue_highwater
                            .fetch_max(depth as u64, Ordering::Relaxed);
                    }
                    Err(full) => {
                        shared.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
                        reply(&Reply::Busy {
                            id,
                            depth: full.depth,
                            capacity: full.capacity,
                            retry_ms: BackoffPolicy::BUSY.delay_ms(0),
                        });
                    }
                }
            }
        }
    };

    if let Some((code, detail)) = close_err {
        reply(&Reply::Error {
            code,
            detail,
            id: None,
            retry_ms: None,
        });
    }
    // Unregister: the driver's future sends to this client become
    // counted drops; pending queue items still process (a mid-batch
    // disconnect never disturbs the batch). Closing the lane lets the
    // writer drain what is queued (the close error above included) and
    // exit.
    shared
        .clients
        .lock()
        .expect("client registry poisoned")
        .remove(&client);
    lane.close();
    if let Ok(h) = writer_handle {
        let _ = h.join();
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The writer thread: drain reply frames from the lane to the socket
/// until the lane closes empty or the socket dies. A dead socket
/// discards whatever is still queued — counted, since those replies
/// were promised but never delivered.
fn writer_loop(mut stream: TcpStream, lane: Arc<ReplyLane>, shared: Arc<Shared>) {
    while let Some(frame) = lane.pop() {
        if stream.write_all(&frame).is_err() {
            let discarded = lane.close_and_discard();
            shared
                .counters
                .replies_dropped
                .fetch_add(discarded as u64 + 1, Ordering::Relaxed);
            return;
        }
    }
    let _ = stream.flush();
}

/// The driver thread: form batches, run the engine, route replies.
fn driver_loop(shared: Arc<Shared>) {
    // The ingress clock: event times are clamped monotone across the
    // whole stream, so a batch boundary can never reorder engine time.
    let mut last_at = Timestamp::ZERO;
    loop {
        let batch = shared.queue.pop_batch(
            shared.cfg.max_batch,
            shared.cfg.batch_latency,
            &shared.shutdown,
        );
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) && shared.queue.depth() == 0 {
                return;
            }
            continue;
        }
        let obs = shared.obs();
        let mut run_msgs: Vec<InMessage> = Vec::new();
        let mut run_tags: Vec<(u64, u64)> = Vec::new();
        let mut run_keys: Vec<Option<String>> = Vec::new();
        for item in batch {
            match item {
                Item::Msg {
                    client,
                    id,
                    mut msg,
                    key,
                    enq,
                } => {
                    if let Some(enq) = enq {
                        if obs.is_enabled() {
                            // Queue wait is infrastructure latency, not
                            // tied to one event's trace (ids are only
                            // assigned inside the engine) — spans land
                            // on the untraced chain, trace 0.
                            let dur = enq.elapsed().as_nanos() as u64;
                            obs.queue.record(dur);
                            let now = obs.now_ns();
                            obs.span(0, reweb_obs::Stage::QueueWait, now.saturating_sub(dur), dur);
                        }
                    }
                    if let Some(k) = &key {
                        // Deduplicate pushed deliveries before they
                        // reach the engine: against the ledger (all
                        // time) and against the current run (a retry
                        // that landed in the same batch).
                        let seen = shared
                            .ledger
                            .lock()
                            .expect("delivery ledger poisoned")
                            .contains(k)
                            || run_keys.iter().flatten().any(|k2| k2 == k);
                        if seen {
                            shared
                                .counters
                                .deliveries_duplicate
                                .fetch_add(1, Ordering::Relaxed);
                            shared.send_to(
                                client,
                                ReplyClass::Control,
                                Reply::Accepted {
                                    id,
                                    duplicate: true,
                                }
                                .encode(),
                            );
                            continue;
                        }
                    }
                    if msg.at < last_at {
                        msg.at = last_at;
                    } else {
                        last_at = msg.at;
                    }
                    run_msgs.push(msg);
                    run_tags.push((client, id));
                    run_keys.push(key);
                }
                Item::Advance { client, id, at } => {
                    flush_run(&shared, &mut run_msgs, &mut run_tags, &mut run_keys);
                    last_at = last_at.max(at);
                    let outcome = shared
                        .engine
                        .lock()
                        .expect("engine mutex poisoned")
                        .advance_clock(at);
                    match outcome {
                        Ok(outs) => {
                            for o in outs {
                                shared
                                    .counters
                                    .reactions_out
                                    .fetch_add(1, Ordering::Relaxed);
                                let trace = o.provenance.as_ref().map_or(0, |p| p.trace);
                                push_outbound(&shared, &o.to, at, &o.payload, trace);
                                shared.send_to(
                                    client,
                                    ReplyClass::Data,
                                    Reply::Reaction {
                                        id,
                                        to: o.to,
                                        payload: o.payload,
                                    }
                                    .encode(),
                                );
                            }
                        }
                        Err(e) => {
                            shared
                                .counters
                                .engine_errors
                                .fetch_add(1, Ordering::Relaxed);
                            shared.send_to(
                                client,
                                ReplyClass::Control,
                                Reply::Error {
                                    code: ErrorCode::Engine,
                                    detail: e,
                                    id: Some(id),
                                    retry_ms: None,
                                }
                                .encode(),
                            );
                        }
                    }
                }
                Item::Sync { client, id } => {
                    flush_run(&shared, &mut run_msgs, &mut run_tags, &mut run_keys);
                    shared.send_to(client, ReplyClass::Control, Reply::Done { id }.encode());
                }
            }
        }
        flush_run(&shared, &mut run_msgs, &mut run_tags, &mut run_keys);
    }
}

/// Hand one reaction to the attached delivery agent (when one is).
/// `trace` is the originating event's trace id (0 = untraced) — it
/// rides along so the delivery agent's outbox/round-trip spans join the
/// same causal chain.
fn push_outbound(shared: &Shared, to: &str, at: Timestamp, payload: &reweb_term::Term, trace: u64) {
    let delivery = shared.delivery.lock().expect("delivery handle poisoned");
    if let Some(h) = delivery.as_ref() {
        h.enqueue(to, at, payload, trace);
    }
}

/// Hand one accumulated message run to the engine, route its tagged
/// outputs back to their submitters (and onward to the delivery agent),
/// then settle the run's pushed deliveries: record their keys in the
/// ledger and answer `accepted` — *after* the engine ran, so an ack is
/// never a lie.
fn flush_run(
    shared: &Shared,
    msgs: &mut Vec<InMessage>,
    tags: &mut Vec<(u64, u64)>,
    keys: &mut Vec<Option<String>>,
) {
    if msgs.is_empty() {
        return;
    }
    let outcome = shared
        .engine
        .lock()
        .expect("engine mutex poisoned")
        .ingest_tagged(msgs);
    shared.counters.batches.fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .msgs_processed
        .fetch_add(msgs.len() as u64, Ordering::Relaxed);
    match outcome {
        Ok(tagged) => {
            for (k, o) in tagged {
                let (client, id) = tags[k as usize];
                shared
                    .counters
                    .reactions_out
                    .fetch_add(1, Ordering::Relaxed);
                let trace = o.provenance.as_ref().map_or(0, |p| p.trace);
                push_outbound(shared, &o.to, msgs[k as usize].at, &o.payload, trace);
                shared.send_to(
                    client,
                    ReplyClass::Data,
                    Reply::Reaction {
                        id,
                        to: o.to,
                        payload: o.payload,
                    }
                    .encode(),
                );
            }
            for (i, key) in keys.iter().enumerate() {
                if let Some(key) = key {
                    let (client, id) = tags[i];
                    shared
                        .ledger
                        .lock()
                        .expect("delivery ledger poisoned")
                        .record(key, &msgs[i].payload);
                    shared
                        .counters
                        .deliveries_ingested
                        .fetch_add(1, Ordering::Relaxed);
                    shared.send_to(
                        client,
                        ReplyClass::Control,
                        Reply::Accepted {
                            id,
                            duplicate: false,
                        }
                        .encode(),
                    );
                }
            }
        }
        Err(e) => {
            shared
                .counters
                .engine_errors
                .fetch_add(1, Ordering::Relaxed);
            // Attribution is lost when the whole batch is refused;
            // every submitter in the run hears about it once. Pushed
            // deliveries in the run are deliberately *not* recorded in
            // the ledger — no ack goes out, the sender retries, and a
            // later successful run ingests them.
            let mut told = std::collections::HashSet::new();
            for &(client, id) in tags.iter() {
                if told.insert(client) {
                    shared.send_to(
                        client,
                        ReplyClass::Control,
                        Reply::Error {
                            code: ErrorCode::Engine,
                            detail: e.clone(),
                            id: Some(id),
                            retry_ms: None,
                        }
                        .encode(),
                    );
                }
            }
        }
    }
    msgs.clear();
    tags.clear();
    keys.clear();
}
