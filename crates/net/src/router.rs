//! The ingress router's heart: a bounded global queue with batch
//! formation under size *and* latency bounds.
//!
//! Every connection's reader thread pushes decoded work items here; the
//! single driver thread pops them in arrival order as batches. The queue
//! is the backpressure point (modeled on the boundary-router pattern:
//! admission is decided at the edge, with an explicit reply, not by
//! letting buffers grow): an event arriving at a full queue is rejected
//! with a `busy` reply and is **not** enqueued. Control items (`sync`
//! markers, clock advances) bypass the capacity check — they are
//! client-bounded and rejecting them would deadlock lockstep clients.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use reweb_core::InMessage;
use reweb_term::Timestamp;

use crate::limit::RateLimit;

/// Tuning knobs of a [`crate::NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Largest batch handed to the engine in one call.
    pub max_batch: usize,
    /// How long the driver waits for a batch to fill before running a
    /// partial one (the latency bound of batch formation).
    pub batch_latency: Duration,
    /// Global ingress queue capacity; events beyond it get `busy`
    /// replies.
    pub queue_capacity: usize,
    /// Largest accepted frame body, in bytes. A frame header announcing
    /// more closes the connection before the body is read (the
    /// body-limit pattern: never buffer what you already know you will
    /// reject).
    pub max_body: usize,
    /// Per-connection reply buffer for *reaction* frames. A slow reader
    /// whose buffer is full has further reactions *dropped* (counted in
    /// [`crate::IngressStats::replies_dropped`]) rather than stalling
    /// the driver — degradation is per-connection, never engine-wide.
    /// Protocol replies (`welcome`/`done`/`error`/`busy`/`throttled`)
    /// are never dropped while the connection lives: they are
    /// flow-control-critical (a lockstep client blocks on `done`), and
    /// each answers one request the client itself sent, so their
    /// buffering is bounded by the client's own traffic.
    pub reply_buffer: usize,
    /// Per-connection event admission rate; `None` disables limiting.
    pub rate_limit: Option<RateLimit>,
    /// Connection cap: a `connect` beyond this many open sessions is
    /// refused at accept with `error{code["busy"]}` + `retry_ms` and
    /// closed before any `hello`. `None` disables the cap.
    pub max_connections: Option<usize>,
    /// Path of the delivery ledger journal (ingested delivery keys).
    /// `None` keeps the receiver's deduplication set in memory only —
    /// a restart then forgets which pushed reactions it already
    /// ingested, so pair a journal with every durable engine.
    pub delivery_journal: Option<std::path::PathBuf>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            max_batch: 256,
            batch_latency: Duration::from_millis(1),
            queue_capacity: 4096,
            max_body: 1 << 20,
            rate_limit: None,
            reply_buffer: 1024,
            max_connections: None,
            delivery_journal: None,
        }
    }
}

/// One unit of work a connection enqueued for the driver.
#[derive(Debug)]
pub(crate) enum Item {
    /// A decoded event bound for the engine.
    Msg {
        /// Connection id of the submitter (reply routing key).
        client: u64,
        /// The request's correlation id.
        id: u64,
        /// The decoded message.
        msg: InMessage,
        /// Set when this is a pushed delivery (`deliver` request): the
        /// deduplication key. The driver checks it against the ledger,
        /// ingests at most once, and answers `accepted` only after the
        /// batch ran.
        key: Option<String>,
        /// Enqueue stamp for the queue-wait histogram. Stamped only
        /// while observability is enabled — `None` costs nothing on the
        /// disabled path.
        enq: Option<Instant>,
    },
    /// An explicit clock advance.
    Advance {
        /// Connection id of the submitter.
        client: u64,
        /// The request's correlation id.
        id: u64,
        /// Target engine time.
        at: Timestamp,
    },
    /// A flush marker: answer `done{id}` once everything ahead of it is
    /// processed.
    Sync {
        /// Connection id of the submitter.
        client: u64,
        /// The marker's correlation id.
        id: u64,
    },
}

/// Why [`IngressQueue::push_event`] refused an event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueFull {
    /// Depth observed at rejection time.
    pub depth: u64,
    /// The configured capacity.
    pub capacity: u64,
}

/// The bounded arrival-order queue between reader threads and the
/// driver.
pub(crate) struct IngressQueue {
    inner: Mutex<VecDeque<Item>>,
    cv: Condvar,
    capacity: usize,
}

impl IngressQueue {
    pub(crate) fn new(capacity: usize) -> IngressQueue {
        IngressQueue {
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Admit one event, unless the queue is at capacity. Returns the
    /// queue depth *after* the push on success.
    pub(crate) fn push_event(&self, item: Item) -> Result<usize, QueueFull> {
        let mut q = self.inner.lock().expect("ingress queue poisoned");
        if q.len() >= self.capacity {
            return Err(QueueFull {
                depth: q.len() as u64,
                capacity: self.capacity as u64,
            });
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.cv.notify_one();
        Ok(depth)
    }

    /// Enqueue a control item (`sync`/`advance`): always admitted, so a
    /// lockstep client can always flush even against a full queue.
    pub(crate) fn push_control(&self, item: Item) {
        let mut q = self.inner.lock().expect("ingress queue poisoned");
        q.push_back(item);
        drop(q);
        self.cv.notify_one();
    }

    /// Pop the next batch: blocks until at least one item is queued (or
    /// `shutdown` is raised), then waits up to `latency` for the batch
    /// to fill to `max_batch` before draining what is there. On
    /// shutdown the remaining items drain immediately — in-flight work
    /// is finished, not dropped.
    pub(crate) fn pop_batch(
        &self,
        max_batch: usize,
        latency: Duration,
        shutdown: &AtomicBool,
    ) -> Vec<Item> {
        let mut q = self.inner.lock().expect("ingress queue poisoned");
        // Phase 1: wait for the first item.
        while q.is_empty() {
            if shutdown.load(Ordering::Acquire) {
                return Vec::new();
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, Duration::from_millis(20))
                .expect("ingress queue poisoned");
            q = guard;
        }
        // Phase 2: give the batch `latency` to fill.
        let deadline = Instant::now() + latency;
        while q.len() < max_batch && !shutdown.load(Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, deadline - now)
                .expect("ingress queue poisoned");
            q = guard;
        }
        let n = q.len().min(max_batch);
        q.drain(..n).collect()
    }

    /// Current queue depth (diagnostics).
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("ingress queue poisoned").len()
    }
}

/// Reply frame class — determines the lane's admission rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyClass {
    /// A reaction: droppable under backpressure (bounded buffer).
    Data,
    /// A protocol reply (`welcome`/`done`/`error`/`busy`/`throttled`):
    /// never dropped while the lane is open — lockstep clients block on
    /// these.
    Control,
}

/// How a [`ReplyLane`] push ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LanePush {
    /// The frame is queued for the writer.
    Queued,
    /// The frame was dropped (full data buffer, or a closed lane).
    Dropped,
}

/// The per-connection outbound queue, mirroring the ingress discipline
/// in the other direction: *data* frames (reactions) are bounded and
/// dropped when the reader is slow; *control* frames always enqueue —
/// each answers one request the client sent, so their buffering is
/// bounded by the client's own traffic — up to a hard cap that closes
/// the lane (a client that never reads at all). One queue for both
/// classes, so reply order is preserved: a `done` never overtakes the
/// reactions it fences.
pub(crate) struct ReplyLane {
    inner: Mutex<LaneState>,
    cv: Condvar,
    data_cap: usize,
    control_cap: usize,
}

struct LaneState {
    frames: VecDeque<(ReplyClass, Vec<u8>)>,
    data: usize,
    control: usize,
    closed: bool,
}

impl ReplyLane {
    /// A lane buffering up to `data_cap` reaction frames; the control
    /// hard cap scales with it.
    pub(crate) fn new(data_cap: usize) -> ReplyLane {
        let data_cap = data_cap.max(1);
        ReplyLane {
            inner: Mutex::new(LaneState {
                frames: VecDeque::new(),
                data: 0,
                control: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            data_cap,
            // Far above any live client's outstanding requests; only a
            // connection that stopped reading entirely can reach it.
            control_cap: 4096 + 64 * data_cap,
        }
    }

    /// Queue one frame under its class's admission rule. A control
    /// overflow marks the lane closed (further pushes drop); frames
    /// already queued still drain to the writer.
    pub(crate) fn push(&self, class: ReplyClass, frame: Vec<u8>) -> LanePush {
        let mut s = self.inner.lock().expect("reply lane poisoned");
        if s.closed {
            return LanePush::Dropped;
        }
        match class {
            ReplyClass::Data => {
                if s.data >= self.data_cap {
                    return LanePush::Dropped;
                }
                s.data += 1;
            }
            ReplyClass::Control => {
                if s.control >= self.control_cap {
                    s.closed = true;
                    drop(s);
                    self.cv.notify_all();
                    return LanePush::Dropped;
                }
                s.control += 1;
            }
        }
        s.frames.push_back((class, frame));
        drop(s);
        self.cv.notify_one();
        LanePush::Queued
    }

    /// Next frame for the writer: blocks while the lane is open and
    /// empty; drains queued frames even after close; `None` once closed
    /// *and* empty.
    pub(crate) fn pop(&self) -> Option<Vec<u8>> {
        let mut s = self.inner.lock().expect("reply lane poisoned");
        loop {
            if let Some((class, frame)) = s.frames.pop_front() {
                match class {
                    ReplyClass::Data => s.data -= 1,
                    ReplyClass::Control => s.control -= 1,
                }
                return Some(frame);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).expect("reply lane poisoned");
        }
    }

    /// Close the lane: pushes drop from now on, the writer drains what
    /// is queued and exits.
    pub(crate) fn close(&self) {
        let mut s = self.inner.lock().expect("reply lane poisoned");
        s.closed = true;
        drop(s);
        self.cv.notify_all();
    }

    /// Close and discard everything queued (the socket is dead, nothing
    /// can be delivered). Returns how many frames were thrown away.
    pub(crate) fn close_and_discard(&self) -> usize {
        let mut s = self.inner.lock().expect("reply lane poisoned");
        s.closed = true;
        s.data = 0;
        s.control = 0;
        let n = s.frames.len();
        s.frames.clear();
        drop(s);
        self.cv.notify_all();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reweb_core::MessageMeta;
    use reweb_term::Term;

    fn item(i: u64) -> Item {
        Item::Msg {
            client: 1,
            id: i,
            msg: InMessage::new(Term::elem("e"), MessageMeta::local(), Timestamp(i)),
            key: None,
            enq: None,
        }
    }

    #[test]
    fn capacity_rejects_events_but_not_controls() {
        let q = IngressQueue::new(2);
        assert!(q.push_event(item(1)).is_ok());
        assert!(q.push_event(item(2)).is_ok());
        let full = q.push_event(item(3)).unwrap_err();
        assert_eq!((full.depth, full.capacity), (2, 2));
        q.push_control(Item::Sync { client: 1, id: 9 });
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn pop_batch_respects_size_bound_and_order() {
        let q = IngressQueue::new(16);
        for i in 0..5 {
            q.push_event(item(i)).unwrap();
        }
        let shutdown = AtomicBool::new(false);
        let batch = q.pop_batch(3, Duration::from_millis(0), &shutdown);
        assert_eq!(batch.len(), 3);
        match &batch[0] {
            Item::Msg { id, .. } => assert_eq!(*id, 0),
            other => panic!("unexpected {other:?}"),
        }
        let rest = q.pop_batch(16, Duration::from_millis(0), &shutdown);
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn shutdown_unblocks_an_empty_pop() {
        let q = IngressQueue::new(16);
        let shutdown = AtomicBool::new(true);
        assert!(q
            .pop_batch(16, Duration::from_millis(1), &shutdown)
            .is_empty());
    }

    #[test]
    fn reply_lane_bounds_data_but_not_control() {
        let lane = ReplyLane::new(2);
        assert_eq!(lane.push(ReplyClass::Data, vec![1]), LanePush::Queued);
        assert_eq!(lane.push(ReplyClass::Data, vec![2]), LanePush::Queued);
        assert_eq!(lane.push(ReplyClass::Data, vec![3]), LanePush::Dropped);
        // Control frames ignore the data bound entirely.
        assert_eq!(lane.push(ReplyClass::Control, vec![4]), LanePush::Queued);
        // Order is preserved across classes.
        assert_eq!(lane.pop(), Some(vec![1]));
        assert_eq!(lane.pop(), Some(vec![2]));
        // A pop frees a data slot.
        assert_eq!(lane.push(ReplyClass::Data, vec![5]), LanePush::Queued);
        assert_eq!(lane.pop(), Some(vec![4]));
        assert_eq!(lane.pop(), Some(vec![5]));
    }

    #[test]
    fn reply_lane_drains_after_close_then_ends() {
        let lane = ReplyLane::new(4);
        lane.push(ReplyClass::Control, vec![1]);
        lane.close();
        assert_eq!(lane.push(ReplyClass::Control, vec![2]), LanePush::Dropped);
        assert_eq!(lane.pop(), Some(vec![1]));
        assert_eq!(lane.pop(), None);
    }

    #[test]
    fn reply_lane_control_overflow_closes() {
        let lane = ReplyLane::new(1);
        let cap = 4096 + 64; // control cap for data_cap = 1
        for _ in 0..cap {
            assert_eq!(lane.push(ReplyClass::Control, vec![0]), LanePush::Queued);
        }
        assert_eq!(lane.push(ReplyClass::Control, vec![0]), LanePush::Dropped);
        assert_eq!(lane.push(ReplyClass::Data, vec![0]), LanePush::Dropped);
        assert_eq!(lane.close_and_discard(), cap);
        assert_eq!(lane.pop(), None);
    }
}
