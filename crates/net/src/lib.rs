//! Networked ingress tier: real sockets in front of the reweb engines.
//!
//! The paper's theses put reactive rules *on the Web*; this crate is the
//! piece that turns in-process `receive` calls into served traffic. It
//! speaks a deliberately boring protocol — the same length+CRC32 frames
//! and textual term syntax the write-ahead log already uses
//! ([`reweb_term::frame`], `docs/WIRE_PROTOCOL.md`) — over plain TCP,
//! and it puts an explicit admission edge between the sockets and the
//! engine:
//!
//! - **framing + envelopes** ([`wire`]): `hello`/`event`/`sync`
//!   requests, `reaction`/`error`/`busy`/`throttled` replies;
//! - **admission** ([`limit`], [`router`]): per-connection token-bucket
//!   rate limits, a frame body limit enforced before the body is read,
//!   and a bounded global queue whose overflow is an explicit `busy`
//!   reply — backpressure is part of the protocol, not a TCP accident;
//! - **the driver** ([`server`]): one thread forming batches under size
//!   and latency bounds and feeding any [`IngressEngine`] —
//!   [`reweb_core::ReactiveEngine`], [`reweb_core::ShardedEngine`], or
//!   a [`reweb_persist::DurableEngine`] over either — through the
//!   *tagged* batch surface, so every reaction routes back to the
//!   connection whose event produced it;
//! - **the client** ([`client`]): the blocking reference client the
//!   tests, benches, and the websim TCP front use;
//! - **outbound delivery** ([`delivery`]): the push half of Thesis 2 —
//!   a per-destination-ordered delivery agent with a durable outbox,
//!   exponential backoff with jitter ([`BackoffPolicy`]), a retry
//!   budget, and a replayable dead-letter log, paired with key-based
//!   receiver deduplication so at-least-once retries ingest
//!   exactly once.
//!
//! The load-bearing invariant, pinned by `tests/net_equivalence.rs`: a
//! message stream delivered over loopback TCP produces **byte-identical
//! engine outputs** to the same stream delivered in-process, and
//! per-connection faults (malformed frames, oversized bodies, slow
//! readers, mid-batch disconnects) never disturb other connections or
//! the engine.

#![warn(missing_docs)]

pub mod client;
pub mod delivery;
pub mod limit;
pub mod router;
pub mod server;
pub mod wire;

pub use client::NetClient;
pub use delivery::{
    DeadLetter, DeliveryAgent, DeliveryConfig, DeliveryHandle, DeliveryLedger, DeliveryStats,
};
pub use limit::{BackoffPolicy, RateLimit};
pub use router::NetConfig;
pub use server::{IngressEngine, IngressStats, NetServer};
pub use wire::{EnvelopeError, ErrorCode, Reply, Request, WIRE_SCHEMA};
