//! The wire protocol: framed textual terms over a byte stream.
//!
//! Every message on a connection — in either direction — is one *frame*
//! ([`reweb_term::frame`]: `[len u32 LE][crc32 u32 LE][payload]`) whose
//! payload is a single envelope term in the textual term syntax
//! ([`reweb_term::parse_term`] / `Display`). The WAL already proved this
//! format portable and pager-readable; the network reuses it verbatim,
//! so `strings` on a packet capture is a readable session history.
//!
//! Client→server envelopes are [`Request`]s, server→client envelopes are
//! [`Reply`]s. The full grammar, the error- and backpressure-reply
//! catalogue, and worked byte examples live in `docs/WIRE_PROTOCOL.md`;
//! every fenced example there is parsed and round-tripped by
//! `tests/wire_protocol_doc.rs` at the workspace root.
//!
//! Fault classes are deliberately split by what the server can still
//! trust afterwards:
//!
//! - **framing faults** (bad CRC, oversized or truncated frame): the
//!   byte stream itself is broken, so the server sends one
//!   [`ErrorCode`] reply best-effort and closes *that connection* —
//!   never more;
//! - **envelope faults** (valid frame, unparsable or ill-shaped term):
//!   the stream is still framed correctly, so the server replies with
//!   [`ErrorCode::BadEnvelope`] and the session continues.

use std::fmt;

use reweb_core::{Credentials, InMessage, MessageMeta};
use reweb_term::frame::encode_frame;
use reweb_term::{parse_term, Term, Timestamp};

/// Schema string every session negotiates in its `hello`/`welcome`
/// exchange. Bump when the envelope grammar changes incompatibly.
pub const WIRE_SCHEMA: &str = "reweb-net/1";

/// A valid frame whose payload is not a valid envelope: the term failed
/// to parse, or parsed into a shape the protocol does not define. The
/// connection survives this (unlike a framing fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeError(pub String);

impl fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad envelope: {}", self.0)
    }
}

impl std::error::Error for EnvelopeError {}

type Result<T> = std::result::Result<T, EnvelopeError>;

fn field_text(t: &Term, name: &str) -> Result<String> {
    t.children()
        .iter()
        .find(|c| c.label() == Some(name))
        .map(|c| c.text_content())
        .ok_or_else(|| EnvelopeError(format!("field `{name}` missing in {t}")))
}

fn field_u64(t: &Term, name: &str) -> Result<u64> {
    let s = field_text(t, name)?;
    s.parse()
        .map_err(|_| EnvelopeError(format!("field `{name}` is not a number: {s}")))
}

fn opt_field_u64(t: &Term, name: &str) -> Result<Option<u64>> {
    if t.children().iter().any(|c| c.label() == Some(name)) {
        field_u64(t, name).map(Some)
    } else {
        Ok(None)
    }
}

fn field_child<'a>(t: &'a Term, name: &str) -> Result<&'a Term> {
    let wrapper = t
        .children()
        .iter()
        .find(|c| c.label() == Some(name))
        .ok_or_else(|| EnvelopeError(format!("field `{name}` missing in {t}")))?;
    wrapper
        .children()
        .first()
        .ok_or_else(|| EnvelopeError(format!("field `{name}` is empty in {t}")))
}

fn has_flag(t: &Term, name: &str) -> bool {
    t.children().iter().any(|c| c.label() == Some(name))
}

fn cred_from(t: &Term) -> Result<Option<Credentials>> {
    match t.children().iter().find(|c| c.label() == Some("cred")) {
        None => Ok(None),
        Some(c) => Ok(Some(Credentials {
            principal: field_text(c, "principal")?,
            secret: field_text(c, "secret")?,
        })),
    }
}

fn cred_term(c: &Credentials) -> Term {
    Term::build("cred")
        .unordered()
        .field("principal", &c.principal)
        .field("secret", &c.secret)
        .finish()
}

/// One client→server envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Session opener — MUST be the first envelope on a connection.
    /// Names the sender and negotiates the schema; the server answers
    /// with [`Reply::Welcome`] or an [`ErrorCode`] reply and a close.
    Hello {
        /// The client's URI: the `from` every event on this session is
        /// attributed to (unless the session is a gateway).
        from: String,
        /// Session credentials, forwarded into AAA admission.
        credentials: Option<Credentials>,
        /// A gateway session relays traffic for *other* principals:
        /// each [`Request::Event`] may carry its own `from`/`cred`,
        /// which the server honors instead of the session identity.
        /// The websim TCP front uses this to preserve per-envelope
        /// senders.
        gateway: bool,
    },
    /// One event for the engine.
    Event {
        /// Client-chosen correlation id, echoed on every reply this
        /// event provokes ([`Reply::Reaction`], error and backpressure
        /// replies).
        id: u64,
        /// Event time in engine milliseconds. Omitted ⇒ the server
        /// stamps its wall clock. Either way the ingress clock is
        /// monotone: the effective time is clamped to
        /// `max(previous, at)` across the whole ingress stream.
        at: Option<Timestamp>,
        /// Gateway sessions only: the original sender this event is
        /// relayed for.
        from: Option<String>,
        /// Gateway sessions only: the original sender's credentials.
        credentials: Option<Credentials>,
        /// The event term delivered to the engine.
        payload: Term,
    },
    /// Explicitly advance the engine clock (fires due absence
    /// deadlines). Reactions are routed back to this session.
    Advance {
        /// Correlation id, echoed on replies.
        id: u64,
        /// Target engine time.
        at: Timestamp,
    },
    /// One reaction pushed by a peer's delivery agent
    /// ([`crate::delivery`]). Unlike [`Request::Event`], a `deliver`
    /// carries a globally unique `key` so the receiver can make
    /// at-least-once retries idempotent: the server ingests the payload
    /// exactly once per key and answers [`Reply::Accepted`] (with the
    /// duplicate flag set on re-sends), only after the engine has
    /// processed the batch containing it.
    Deliver {
        /// Correlation id, echoed on the `accepted` (or error) reply.
        id: u64,
        /// Globally unique delivery key (`<origin-uri>#<outbox-seq>`);
        /// the receiver deduplicates retries by this key.
        key: String,
        /// Event time of the originating reaction, in engine
        /// milliseconds. Omitted ⇒ the receiver stamps its wall clock.
        at: Option<Timestamp>,
        /// The reaction term, ingested as an event by the receiver.
        payload: Term,
    },
    /// Flush marker: the server answers [`Reply::Done`] with the same
    /// id once everything this session enqueued before the marker has
    /// been processed and its replies written. The blocking client uses
    /// this for lockstep request/response turns.
    Sync {
        /// Correlation id, echoed on the `done` reply.
        id: u64,
    },
    /// Runtime observability query: the server answers [`Reply::Stats`]
    /// with the current histogram snapshot (batch latency, fsync stall,
    /// queue wait, delivery round-trip). Answered from shared atomics —
    /// never queued behind the engine, so stats stay readable under
    /// ingress pressure.
    Stats {
        /// Correlation id, echoed on the `stats` reply.
        id: u64,
    },
    /// Runtime observability query: the server answers [`Reply::Trace`]
    /// with the recorded span chain of one trace id (as far as the
    /// flight recorder still remembers it).
    Trace {
        /// Correlation id, echoed on the `trace` reply.
        id: u64,
        /// The trace id whose span chain is requested.
        trace: u64,
    },
    /// Polite close: the server drops the session without counting a
    /// fault.
    Bye,
}

impl Request {
    /// Serialize as an envelope term (the frame payload is its
    /// `Display` form).
    pub fn to_term(&self) -> Term {
        match self {
            Request::Hello {
                from,
                credentials,
                gateway,
            } => {
                let mut b = Term::build("hello")
                    .unordered()
                    .field("schema", WIRE_SCHEMA)
                    .field("from", from);
                if let Some(c) = credentials {
                    b = b.child(cred_term(c));
                }
                if *gateway {
                    b = b.child(Term::elem("gateway"));
                }
                b.finish()
            }
            Request::Event {
                id,
                at,
                from,
                credentials,
                payload,
            } => {
                let mut b = Term::build("event").unordered().field("id", id.to_string());
                if let Some(at) = at {
                    b = b.field("at", at.millis().to_string());
                }
                if let Some(from) = from {
                    b = b.field("from", from);
                }
                if let Some(c) = credentials {
                    b = b.child(cred_term(c));
                }
                b.child(Term::ordered("payload", vec![payload.clone()]))
                    .finish()
            }
            Request::Deliver {
                id,
                key,
                at,
                payload,
            } => {
                let mut b = Term::build("deliver")
                    .unordered()
                    .field("id", id.to_string())
                    .field("key", key);
                if let Some(at) = at {
                    b = b.field("at", at.millis().to_string());
                }
                b.child(Term::ordered("payload", vec![payload.clone()]))
                    .finish()
            }
            Request::Advance { id, at } => Term::build("advance")
                .unordered()
                .field("id", id.to_string())
                .field("at", at.millis().to_string())
                .finish(),
            Request::Sync { id } => Term::build("sync")
                .unordered()
                .field("id", id.to_string())
                .finish(),
            Request::Stats { id } => Term::build("stats")
                .unordered()
                .field("id", id.to_string())
                .finish(),
            Request::Trace { id, trace } => Term::build("trace")
                .unordered()
                .field("id", id.to_string())
                .field("trace", trace.to_string())
                .finish(),
            Request::Bye => Term::elem("bye"),
        }
    }

    /// Parse an envelope term back into a request.
    pub fn from_term(t: &Term) -> Result<Request> {
        match t.label() {
            Some("hello") => {
                let schema = field_text(t, "schema")?;
                if schema != WIRE_SCHEMA {
                    return Err(EnvelopeError(format!(
                        "schema `{schema}` is not `{WIRE_SCHEMA}`"
                    )));
                }
                Ok(Request::Hello {
                    from: field_text(t, "from")?,
                    credentials: cred_from(t)?,
                    gateway: has_flag(t, "gateway"),
                })
            }
            Some("event") => Ok(Request::Event {
                id: field_u64(t, "id")?,
                at: opt_field_u64(t, "at")?.map(Timestamp),
                from: t
                    .children()
                    .iter()
                    .find(|c| c.label() == Some("from"))
                    .map(|c| c.text_content()),
                credentials: cred_from(t)?,
                payload: field_child(t, "payload")?.clone(),
            }),
            Some("deliver") => Ok(Request::Deliver {
                id: field_u64(t, "id")?,
                key: field_text(t, "key")?,
                at: opt_field_u64(t, "at")?.map(Timestamp),
                payload: field_child(t, "payload")?.clone(),
            }),
            Some("advance") => Ok(Request::Advance {
                id: field_u64(t, "id")?,
                at: Timestamp(field_u64(t, "at")?),
            }),
            Some("sync") => Ok(Request::Sync {
                id: field_u64(t, "id")?,
            }),
            Some("stats") => Ok(Request::Stats {
                id: field_u64(t, "id")?,
            }),
            Some("trace") => Ok(Request::Trace {
                id: field_u64(t, "id")?,
                trace: field_u64(t, "trace")?,
            }),
            Some("bye") => Ok(Request::Bye),
            other => Err(EnvelopeError(format!(
                "unknown request label {other:?} in {t}"
            ))),
        }
    }

    /// Encode as one complete frame (header + payload bytes), ready to
    /// write to a socket.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.to_term().to_string().as_bytes())
    }

    /// Decode one frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| EnvelopeError(format!("payload is not UTF-8: {e}")))?;
        let term = parse_term(text).map_err(|e| EnvelopeError(format!("unparsable term: {e}")))?;
        Request::from_term(&term)
    }
}

/// Why the server rejected a frame, an envelope, or a whole session.
/// Serialized as the `code` field of [`Reply::Error`]; the catalogue —
/// including which codes close the connection — is specified in
/// `docs/WIRE_PROTOCOL.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// `hello` named a schema this server does not speak. Closes.
    BadSchema,
    /// The first envelope was not `hello` (or `hello` was repeated).
    /// Closes.
    NoHello,
    /// A valid frame carried an unparsable or ill-shaped envelope term.
    /// The session continues.
    BadEnvelope,
    /// The byte stream broke: a frame whose CRC does not match its
    /// payload (or a truncated frame at EOF). Closes — after a framing
    /// fault the stream can no longer be trusted to be at a frame
    /// boundary.
    MalformedFrame,
    /// A frame header announced a body larger than the server's
    /// configured `max_body`. Closes without reading the body.
    OversizedFrame,
    /// A non-gateway session sent a per-event `from`/`cred` override.
    /// The event is rejected; the session continues.
    NotGateway,
    /// The engine refused the batch (e.g. a poisoned sharded engine
    /// after a worker panic). The session continues; the event was
    /// logged as rejected.
    Engine,
    /// The server is shutting down; no further events are accepted.
    ShuttingDown,
    /// The server is at its configured connection cap
    /// (`NetConfig::max_connections`); the session was refused at
    /// accept, before any `hello`. Closes — reconnect after the
    /// reply's `retry_ms`.
    Busy,
}

impl ErrorCode {
    /// The wire form of the code (kebab-case).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadSchema => "bad-schema",
            ErrorCode::NoHello => "no-hello",
            ErrorCode::BadEnvelope => "bad-envelope",
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::OversizedFrame => "oversized-frame",
            ErrorCode::NotGateway => "not-gateway",
            ErrorCode::Engine => "engine",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Busy => "busy",
        }
    }

    /// Parse the wire form back.
    pub fn parse(s: &str) -> Result<ErrorCode> {
        Ok(match s {
            "bad-schema" => ErrorCode::BadSchema,
            "no-hello" => ErrorCode::NoHello,
            "bad-envelope" => ErrorCode::BadEnvelope,
            "malformed-frame" => ErrorCode::MalformedFrame,
            "oversized-frame" => ErrorCode::OversizedFrame,
            "not-gateway" => ErrorCode::NotGateway,
            "engine" => ErrorCode::Engine,
            "shutting-down" => ErrorCode::ShuttingDown,
            "busy" => ErrorCode::Busy,
            other => return Err(EnvelopeError(format!("unknown error code `{other}`"))),
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One server→client envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Successful `hello` answer: the session is open.
    Welcome {
        /// The schema the server speaks ([`WIRE_SCHEMA`]).
        schema: String,
        /// The serving engine's shape descriptor (`single`,
        /// `sharded:8:Threads`, `durable:…`) — diagnostic only.
        engine: String,
    },
    /// One reaction the receiver's own submission produced, in engine
    /// output order.
    Reaction {
        /// The id of the [`Request::Event`] (or [`Request::Advance`])
        /// that produced this reaction.
        id: u64,
        /// The destination URI the rule action addressed. The ingress
        /// tier reports it to the submitter; when a delivery agent
        /// ([`crate::delivery`]) is attached to the server it *also*
        /// dials the destination and pushes the reaction as a
        /// [`Request::Deliver`].
        to: String,
        /// The reaction term.
        payload: Term,
    },
    /// Answer to [`Request::Deliver`]: the reaction is durably ingested
    /// (or was already, on a retried key). Sent *after* the engine
    /// processed the batch — the ack is the sender's license to drop
    /// the reaction from its outbox.
    Accepted {
        /// The delivery request's id.
        id: u64,
        /// The key had been ingested before; this send was a retry and
        /// was *not* ingested again.
        duplicate: bool,
    },
    /// Answer to [`Request::Sync`]: everything this session enqueued
    /// before the marker has been processed.
    Done {
        /// The sync marker's id.
        id: u64,
    },
    /// A fault, per the [`ErrorCode`] catalogue.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (never required for client logic).
        detail: String,
        /// The offending request's id, when one was decodable.
        id: Option<u64>,
        /// Present on retryable faults ([`ErrorCode::Busy`],
        /// [`ErrorCode::ShuttingDown`]): suggested client backoff in
        /// milliseconds, from the server's [`crate::BackoffPolicy`].
        retry_ms: Option<u64>,
    },
    /// Backpressure: the global ingress queue is full; the event was
    /// NOT enqueued. Retry after a backoff.
    Busy {
        /// The rejected request's id.
        id: u64,
        /// Queue depth observed at rejection time.
        depth: u64,
        /// The configured queue capacity.
        capacity: u64,
        /// Suggested client backoff in milliseconds.
        retry_ms: u64,
    },
    /// Backpressure: this session exceeded its per-client rate limit;
    /// the event was NOT enqueued. Retry after a backoff.
    Throttled {
        /// The rejected request's id.
        id: u64,
        /// Suggested client backoff in milliseconds (time until the
        /// token bucket refills one token).
        retry_ms: u64,
    },
    /// Answer to [`Request::Stats`]: the server's observability
    /// snapshot, a `stats{…}` term as produced by `Obs::stats_term`
    /// (enabled flag, span count, and the four latency histograms).
    Stats {
        /// The stats request's id.
        id: u64,
        /// The `stats{…}` snapshot term.
        body: Term,
    },
    /// Answer to [`Request::Trace`]: the span chain the flight
    /// recorder still holds for one trace id, a `trace{…}` term as
    /// produced by `Obs::trace_term`. An unknown or already-evicted
    /// trace id answers with an empty chain, not an error.
    Trace {
        /// The trace request's id.
        id: u64,
        /// The `trace{…}` span-chain term.
        body: Term,
    },
}

impl Reply {
    /// Serialize as an envelope term (the frame payload is its
    /// `Display` form).
    pub fn to_term(&self) -> Term {
        match self {
            Reply::Welcome { schema, engine } => Term::build("welcome")
                .unordered()
                .field("schema", schema)
                .field("engine", engine)
                .finish(),
            Reply::Reaction { id, to, payload } => Term::build("reaction")
                .unordered()
                .field("id", id.to_string())
                .field("to", to)
                .child(Term::ordered("payload", vec![payload.clone()]))
                .finish(),
            Reply::Accepted { id, duplicate } => {
                let mut b = Term::build("accepted")
                    .unordered()
                    .field("id", id.to_string());
                if *duplicate {
                    b = b.child(Term::elem("dup"));
                }
                b.finish()
            }
            Reply::Done { id } => Term::build("done")
                .unordered()
                .field("id", id.to_string())
                .finish(),
            Reply::Error {
                code,
                detail,
                id,
                retry_ms,
            } => {
                let mut b = Term::build("error")
                    .unordered()
                    .field("code", code.as_str())
                    .field("detail", detail);
                if let Some(id) = id {
                    b = b.field("id", id.to_string());
                }
                if let Some(retry_ms) = retry_ms {
                    b = b.field("retry_ms", retry_ms.to_string());
                }
                b.finish()
            }
            Reply::Busy {
                id,
                depth,
                capacity,
                retry_ms,
            } => Term::build("busy")
                .unordered()
                .field("id", id.to_string())
                .field("depth", depth.to_string())
                .field("capacity", capacity.to_string())
                .field("retry_ms", retry_ms.to_string())
                .finish(),
            Reply::Throttled { id, retry_ms } => Term::build("throttled")
                .unordered()
                .field("id", id.to_string())
                .field("retry_ms", retry_ms.to_string())
                .finish(),
            Reply::Stats { id, body } => Term::build("stats")
                .unordered()
                .field("id", id.to_string())
                .child(Term::ordered("body", vec![body.clone()]))
                .finish(),
            Reply::Trace { id, body } => Term::build("trace")
                .unordered()
                .field("id", id.to_string())
                .child(Term::ordered("body", vec![body.clone()]))
                .finish(),
        }
    }

    /// Parse an envelope term back into a reply.
    pub fn from_term(t: &Term) -> Result<Reply> {
        match t.label() {
            Some("welcome") => Ok(Reply::Welcome {
                schema: field_text(t, "schema")?,
                engine: field_text(t, "engine")?,
            }),
            Some("reaction") => Ok(Reply::Reaction {
                id: field_u64(t, "id")?,
                to: field_text(t, "to")?,
                payload: field_child(t, "payload")?.clone(),
            }),
            Some("accepted") => Ok(Reply::Accepted {
                id: field_u64(t, "id")?,
                duplicate: has_flag(t, "dup"),
            }),
            Some("done") => Ok(Reply::Done {
                id: field_u64(t, "id")?,
            }),
            Some("error") => Ok(Reply::Error {
                code: ErrorCode::parse(&field_text(t, "code")?)?,
                detail: field_text(t, "detail")?,
                id: opt_field_u64(t, "id")?,
                retry_ms: opt_field_u64(t, "retry_ms")?,
            }),
            Some("busy") => Ok(Reply::Busy {
                id: field_u64(t, "id")?,
                depth: field_u64(t, "depth")?,
                capacity: field_u64(t, "capacity")?,
                retry_ms: field_u64(t, "retry_ms")?,
            }),
            Some("throttled") => Ok(Reply::Throttled {
                id: field_u64(t, "id")?,
                retry_ms: field_u64(t, "retry_ms")?,
            }),
            Some("stats") => Ok(Reply::Stats {
                id: field_u64(t, "id")?,
                body: field_child(t, "body")?.clone(),
            }),
            Some("trace") => Ok(Reply::Trace {
                id: field_u64(t, "id")?,
                body: field_child(t, "body")?.clone(),
            }),
            other => Err(EnvelopeError(format!(
                "unknown reply label {other:?} in {t}"
            ))),
        }
    }

    /// Encode as one complete frame (header + payload bytes).
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.to_term().to_string().as_bytes())
    }

    /// Decode one frame payload into a reply.
    pub fn decode(payload: &[u8]) -> Result<Reply> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| EnvelopeError(format!("payload is not UTF-8: {e}")))?;
        let term = parse_term(text).map_err(|e| EnvelopeError(format!("unparsable term: {e}")))?;
        Reply::from_term(&term)
    }
}

/// Turn a decoded [`Request::Event`] into the engine's [`InMessage`],
/// resolving the session-vs-gateway identity rules: a gateway session
/// may override `from`/`cred` per event; any other session gets its
/// `hello` identity regardless.
pub fn event_to_message(
    session_from: &str,
    session_cred: &Option<Credentials>,
    gateway: bool,
    from: &Option<String>,
    credentials: &Option<Credentials>,
    payload: Term,
    at: Timestamp,
) -> std::result::Result<InMessage, ErrorCode> {
    let (from, cred) = if gateway {
        (
            from.clone().unwrap_or_else(|| session_from.to_string()),
            credentials.clone().or_else(|| session_cred.clone()),
        )
    } else {
        if from.is_some() || credentials.is_some() {
            return Err(ErrorCode::NotGateway);
        }
        (session_from.to_string(), session_cred.clone())
    };
    let mut meta = MessageMeta::from_uri(from);
    if let Some(c) = cred {
        meta = meta.with_credentials(c.principal, c.secret);
    }
    Ok(InMessage::new(payload, meta, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt_req(r: Request) {
        let t = r.to_term();
        let parsed = parse_term(&t.to_string()).unwrap();
        assert_eq!(Request::from_term(&parsed).unwrap(), r, "via {t}");
    }

    fn rt_rep(r: Reply) {
        let t = r.to_term();
        let parsed = parse_term(&t.to_string()).unwrap();
        assert_eq!(Reply::from_term(&parsed).unwrap(), r, "via {t}");
    }

    #[test]
    fn requests_round_trip() {
        rt_req(Request::Hello {
            from: "http://client.example/".into(),
            credentials: Some(Credentials {
                principal: "alice".into(),
                secret: "s3cret".into(),
            }),
            gateway: true,
        });
        rt_req(Request::Event {
            id: 42,
            at: Some(Timestamp(1000)),
            from: Some("http://origin.example/".into()),
            credentials: None,
            payload: parse_term("order{item[\"book\"], qty[\"2\"]}").unwrap(),
        });
        rt_req(Request::Event {
            id: 43,
            at: None,
            from: None,
            credentials: None,
            payload: Term::elem("ping"),
        });
        rt_req(Request::Deliver {
            id: 46,
            key: "http://a.example/#17".into(),
            at: Some(Timestamp(2500)),
            payload: parse_term("ship{item[\"book\"]}").unwrap(),
        });
        rt_req(Request::Deliver {
            id: 47,
            key: "http://a.example/#18".into(),
            at: None,
            payload: Term::elem("ping"),
        });
        rt_req(Request::Advance {
            id: 44,
            at: Timestamp(5000),
        });
        rt_req(Request::Sync { id: 45 });
        rt_req(Request::Stats { id: 48 });
        rt_req(Request::Trace { id: 49, trace: 12 });
        rt_req(Request::Bye);
    }

    #[test]
    fn replies_round_trip() {
        rt_rep(Reply::Welcome {
            schema: WIRE_SCHEMA.into(),
            engine: "single".into(),
        });
        rt_rep(Reply::Reaction {
            id: 42,
            to: "http://warehouse.example/".into(),
            payload: Term::elem("ship"),
        });
        rt_rep(Reply::Accepted {
            id: 46,
            duplicate: false,
        });
        rt_rep(Reply::Accepted {
            id: 47,
            duplicate: true,
        });
        rt_rep(Reply::Done { id: 45 });
        rt_rep(Reply::Error {
            code: ErrorCode::BadEnvelope,
            detail: "unparsable term".into(),
            id: Some(7),
            retry_ms: None,
        });
        rt_rep(Reply::Error {
            code: ErrorCode::Busy,
            detail: "connection cap reached".into(),
            id: None,
            retry_ms: Some(10),
        });
        rt_rep(Reply::Busy {
            id: 9,
            depth: 4096,
            capacity: 4096,
            retry_ms: 10,
        });
        rt_rep(Reply::Throttled {
            id: 10,
            retry_ms: 50,
        });
        // Observability bodies round-trip shaped exactly as the live
        // server produces them (Obs::stats_term / Obs::trace_term).
        let obs = reweb_obs::Obs::enabled();
        obs.batch.record(1500);
        let t = obs.next_trace();
        obs.span(t, reweb_obs::Stage::Admission, 10, 250);
        rt_rep(Reply::Stats {
            id: 11,
            body: obs.stats_term(),
        });
        rt_rep(Reply::Trace {
            id: 12,
            body: obs.trace_term(t),
        });
    }

    #[test]
    fn hello_schema_is_checked() {
        let t = parse_term("hello{schema[\"reweb-net/999\"], from[\"x\"]}").unwrap();
        assert!(Request::from_term(&t).is_err());
    }

    #[test]
    fn non_gateway_override_is_rejected() {
        let err = event_to_message(
            "http://s/",
            &None,
            false,
            &Some("http://other/".into()),
            &None,
            Term::elem("e"),
            Timestamp(1),
        )
        .unwrap_err();
        assert_eq!(err, ErrorCode::NotGateway);
    }
}
