//! The outbound delivery agent: the push half of Thesis 2.
//!
//! The ingress tier reports every reaction back to its submitter; this
//! module is what makes `reaction{to[addr]}` actually *reach* `addr`.
//! A [`DeliveryAgent`] attached to a server (or fed directly) keeps one
//! ordered queue per destination URI, resolves each destination against
//! a longest-prefix route table, dials the peer over the same framed
//! wire protocol, and pushes the reaction as a `deliver` request. The
//! reliability ladder, in order of escalation:
//!
//! 1. **At-least-once.** Every reaction is journaled to a durable
//!    outbox ([`reweb_persist::outbox`]) *before* the first dial; only
//!    the peer's `accepted` reply settles it. A crash of the sender
//!    re-queues the unsettled remainder on restart.
//! 2. **Retry with backoff.** Connect failures, I/O timeouts, dropped
//!    connections, and retryable replies (`busy`, `throttled`,
//!    `shutting-down`) put the destination to sleep on its
//!    [`crate::BackoffPolicy`] ladder — exponential, jittered by the
//!    delivery's stable sequence number — and redial. The head of a
//!    destination queue blocks the rest: per-destination order is
//!    never traded for progress.
//! 3. **Dead-letter, never drop.** A delivery that exhausts its retry
//!    budget moves to a CRC-framed dead-letter log
//!    ([`reweb_term::frame`], same format as the WAL), freeing the
//!    queue behind it. Dead letters survive restarts, are inspectable
//!    ([`DeliveryAgent::dead_letters`]), and are re-queued *under
//!    their original keys* by [`DeliveryAgent::redeliver`] once the
//!    destination is back — the receiver's key-based deduplication
//!    makes the retry idempotent.
//!
//! Duplicates are possible by design (an ack lost in a crash or a
//! dropped connection re-sends an already-ingested reaction); the
//! receiving server deduplicates by delivery key against its
//! [`DeliveryLedger`], so the *ingested* sequence per destination is
//! exactly-once and in order. The fault-injection hooks
//! ([`DeliveryAgent::inject_connect_failures`],
//! [`DeliveryAgent::inject_drop_before_ack`],
//! [`DeliveryAgent::inject_slow_peer`]) exist so the tests exercise
//! every rung of the ladder deterministically.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use reweb_persist::outbox::{Outbox, PendingDelivery, Settle};
use reweb_persist::SyncPolicy;
use reweb_term::frame::{crc32, scan_frames, write_frame, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use reweb_term::{parse_term, Term, Timestamp};

use crate::limit::BackoffPolicy;
use crate::wire::{ErrorCode, Reply, Request};

/// Tuning knobs of a [`DeliveryAgent`].
#[derive(Debug, Clone)]
pub struct DeliveryConfig {
    /// The sender's URI: the `hello` identity of every outbound
    /// session, and the prefix of every delivery key
    /// (`<from>#<outbox-seq>`).
    pub from: String,
    /// Retry ladder between failed attempts (see
    /// [`DeliveryConfig::default`] for the shipped ladder).
    pub backoff: BackoffPolicy,
    /// Attempts per delivery before it dead-letters. An attempt is one
    /// dial-and-push cycle that did not end in an `accepted`.
    pub retry_budget: u32,
    /// TCP connect timeout per dial.
    pub connect_timeout: Duration,
    /// Read/write timeout on an open session (a peer that accepts the
    /// connection but never answers counts as a failed attempt).
    pub io_timeout: Duration,
    /// Durable outbox journal path; `None` keeps the pending set in
    /// memory only (sender crashes then lose unsettled deliveries —
    /// fine for tests, not for a durable node).
    pub outbox: Option<PathBuf>,
    /// Dead-letter log path; `None` keeps dead letters in memory only.
    pub dead_letter: Option<PathBuf>,
}

impl Default for DeliveryConfig {
    fn default() -> DeliveryConfig {
        DeliveryConfig {
            from: "http://local/".into(),
            backoff: BackoffPolicy {
                base_ms: 50,
                max_ms: 2_000,
                jitter_ms: 25,
            },
            retry_budget: 8,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(2_000),
            outbox: None,
            dead_letter: None,
        }
    }
}

/// A reaction that exhausted its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// The delivery's stable outbox sequence number (its wire key is
    /// `<from>#<seq>`).
    pub seq: u64,
    /// Destination URI that could not be reached.
    pub to: String,
    /// Event time of the originating reaction.
    pub at: Timestamp,
    /// The reaction term.
    pub payload: Term,
    /// Attempts spent before giving up.
    pub attempts: u32,
}

/// Point-in-time counters of a [`DeliveryAgent`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Reactions accepted into a destination queue.
    pub enqueued: u64,
    /// Reactions acknowledged by their destination.
    pub delivered: u64,
    /// Reactions moved to the dead-letter log.
    pub dead_lettered: u64,
    /// Reactions re-queued by [`DeliveryAgent::redeliver`].
    pub redelivered: u64,
    /// Acks that came back flagged duplicate (the peer had already
    /// ingested the key — a retry crossed a lost ack).
    pub duplicate_acks: u64,
    /// Dial-and-push attempts that failed (connect, I/O, retryable
    /// replies).
    pub failed_attempts: u64,
    /// Reactions skipped at enqueue because no route matched their
    /// destination (they still reached their submitter as a `reaction`
    /// reply; they were never the agent's to deliver).
    pub unrouted: u64,
}

struct Queued {
    seq: u64,
    at: Timestamp,
    payload: Term,
    attempts: u32,
    /// Originating event's trace id (0 = untraced); joins the delivery
    /// round-trip span to the causal chain the engine recorded.
    trace: u64,
}

struct AgentState {
    queues: HashMap<String, VecDeque<Queued>>,
    outbox: Option<Outbox>,
    dead: Vec<DeadLetter>,
    dead_file: Option<File>,
    stats: DeliveryStats,
}

struct AgentInner {
    cfg: DeliveryConfig,
    routes: Mutex<Vec<(String, SocketAddr)>>,
    state: Mutex<AgentState>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Observability handle (disabled by default;
    /// [`crate::NetServer::attach_delivery`] swaps in the server's).
    obs: Mutex<Arc<reweb_obs::Obs>>,
    // Fault injection (tests): counters/delays consumed by workers.
    fault_connect: Mutex<Vec<(String, u32)>>,
    fault_drop_ack: Mutex<Vec<(String, u32)>>,
    fault_slow: Mutex<Vec<(String, Duration)>>,
}

/// The delivery agent. Cloning the handle is cheap (shared state);
/// worker threads — one per active destination — are owned by the
/// handle that created them and joined by [`DeliveryAgent::shutdown`].
pub struct DeliveryAgent {
    inner: Arc<AgentInner>,
    workers: Vec<(String, JoinHandle<()>)>,
}

/// A cheap cloneable feed handle: just enough surface for the server's
/// driver thread to hand reactions over.
#[derive(Clone)]
pub struct DeliveryHandle {
    inner: Arc<AgentInner>,
}

impl DeliveryHandle {
    /// See [`DeliveryAgent::enqueue`]. `trace` is the originating
    /// event's trace id (0 = untraced).
    pub fn enqueue(&self, to: &str, at: Timestamp, payload: &Term, trace: u64) -> bool {
        enqueue_inner(&self.inner, to, at, payload, None, trace)
    }

    /// Swap in a shared observability handle (outbox + delivery
    /// round-trip instrumentation).
    pub fn set_obs(&self, obs: Arc<reweb_obs::Obs>) {
        *self.inner.obs.lock().expect("obs handle poisoned") = obs;
    }
}

fn dead_letter_to_bytes(d: &DeadLetter) -> Vec<u8> {
    Term::build("dl")
        .unordered()
        .field("seq", d.seq.to_string())
        .field("to", &d.to)
        .field("at", d.at.millis().to_string())
        .field("attempts", d.attempts.to_string())
        .child(Term::ordered("payload", vec![d.payload.clone()]))
        .finish()
        .to_string()
        .into_bytes()
}

fn dead_letter_from_bytes(bytes: &[u8]) -> std::io::Result<DeadLetter> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let text = std::str::from_utf8(bytes).map_err(|_| bad("dead letter is not UTF-8".into()))?;
    let t = parse_term(text).map_err(|e| bad(format!("unparsable dead letter: {e}")))?;
    if t.label() != Some("dl") {
        return Err(bad(format!("expected dl{{…}}, got {t}")));
    }
    let field = |name: &str| -> std::io::Result<String> {
        t.children()
            .iter()
            .find(|c| c.label() == Some(name))
            .map(|c| c.text_content())
            .ok_or_else(|| bad(format!("dead letter field `{name}` missing")))
    };
    let num = |name: &str| -> std::io::Result<u64> {
        field(name)?
            .parse()
            .map_err(|_| bad(format!("dead letter field `{name}` is not a number")))
    };
    let payload = t
        .children()
        .iter()
        .find(|c| c.label() == Some("payload"))
        .and_then(|w| w.children().first())
        .ok_or_else(|| bad("dead letter payload missing".into()))?
        .clone();
    Ok(DeadLetter {
        seq: num("seq")?,
        to: field("to")?,
        at: Timestamp(num("at")?),
        payload,
        attempts: num("attempts")? as u32,
    })
}

/// Longest-prefix route resolution (the websim `owner_of` rule).
fn resolve(routes: &[(String, SocketAddr)], to: &str) -> Option<SocketAddr> {
    routes
        .iter()
        .filter(|(p, _)| to.starts_with(p.as_str()))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, a)| *a)
}

fn prefix_entry<T: Copy>(table: &[(String, T)], to: &str) -> Option<usize> {
    table
        .iter()
        .enumerate()
        .filter(|(_, (p, _))| to.starts_with(p.as_str()))
        .max_by_key(|(_, (p, _))| p.len())
        .map(|(i, _)| i)
}

fn enqueue_inner(
    inner: &Arc<AgentInner>,
    to: &str,
    at: Timestamp,
    payload: &Term,
    fixed_seq: Option<u64>,
    trace: u64,
) -> bool {
    {
        let routes = inner.routes.lock().expect("route table poisoned");
        if resolve(&routes, to).is_none() {
            let mut s = inner.state.lock().expect("delivery state poisoned");
            s.stats.unrouted += 1;
            return false;
        }
    }
    let mut s = inner.state.lock().expect("delivery state poisoned");
    let seq = match (fixed_seq, s.outbox.as_mut()) {
        (Some(seq), Some(ob)) => {
            let p = PendingDelivery {
                seq,
                to: to.to_string(),
                at,
                payload: payload.clone(),
            };
            if ob.requeue(&p).is_err() {
                return false;
            }
            seq
        }
        (Some(seq), None) => seq,
        (None, Some(ob)) => match ob.enqueue(to, at, payload) {
            Ok(seq) => seq,
            Err(_) => return false,
        },
        (None, None) => {
            // No journal: synthesize monotone seqs from what is known.
            s.stats.enqueued + s.stats.redelivered
        }
    };
    s.stats.enqueued += 1;
    s.queues
        .entry(to.to_string())
        .or_default()
        .push_back(Queued {
            seq,
            at,
            payload: payload.clone(),
            attempts: 0,
            trace,
        });
    drop(s);
    inner.cv.notify_all();
    if trace != 0 {
        let obs = Arc::clone(&inner.obs.lock().expect("obs handle poisoned"));
        if obs.is_enabled() {
            // Instantaneous marker: the reaction entered the outbox.
            let now = obs.now_ns();
            obs.span(trace, reweb_obs::Stage::Outbox, now, 0);
        }
    }
    true
}

impl DeliveryAgent {
    /// Create an agent: open (and recover) the outbox and dead-letter
    /// log, re-queue every unsettled delivery, and stand ready. Worker
    /// threads spawn lazily, one per destination with traffic.
    pub fn new(cfg: DeliveryConfig) -> std::io::Result<DeliveryAgent> {
        let io_err = |e: reweb_persist::PersistError| std::io::Error::other(e.to_string());
        let mut pending: Vec<PendingDelivery> = Vec::new();
        let outbox = match &cfg.outbox {
            Some(path) => {
                let open = Outbox::open(path, SyncPolicy::Always).map_err(io_err)?;
                pending = open.pending;
                Some(open.outbox)
            }
            None => None,
        };
        let (dead_file, dead) = match &cfg.dead_letter {
            Some(path) => {
                let (f, d) = open_dead_letter(path)?;
                (Some(f), d)
            }
            None => (None, Vec::new()),
        };
        let inner = Arc::new(AgentInner {
            cfg,
            routes: Mutex::new(Vec::new()),
            state: Mutex::new(AgentState {
                queues: HashMap::new(),
                outbox,
                dead,
                dead_file,
                stats: DeliveryStats::default(),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            obs: Mutex::new(Arc::new(reweb_obs::Obs::new())),
            fault_connect: Mutex::new(Vec::new()),
            fault_drop_ack: Mutex::new(Vec::new()),
            fault_slow: Mutex::new(Vec::new()),
        });
        let mut agent = DeliveryAgent {
            inner,
            workers: Vec::new(),
        };
        // Recovered deliveries re-enter their destination queues (in
        // seq order — Outbox::open returns them sorted) once routes
        // exist; queue them now, workers will wait on routes.
        {
            let mut s = agent.inner.state.lock().expect("delivery state poisoned");
            for p in pending {
                s.stats.enqueued += 1;
                s.queues.entry(p.to.clone()).or_default().push_back(Queued {
                    seq: p.seq,
                    at: p.at,
                    payload: p.payload,
                    attempts: 0,
                    // Trace ids are not journaled: a recovered delivery
                    // re-enters untraced (the recorder that knew the
                    // chain died with the crashed process anyway).
                    trace: 0,
                });
            }
            let dests: Vec<String> = s.queues.keys().cloned().collect();
            drop(s);
            for d in dests {
                agent.ensure_worker(&d);
            }
        }
        Ok(agent)
    }

    /// Register a route: destinations whose URI starts with `prefix`
    /// dial `addr`. Longest prefix wins.
    pub fn add_route(&self, prefix: impl Into<String>, addr: SocketAddr) {
        self.inner
            .routes
            .lock()
            .expect("route table poisoned")
            .push((prefix.into(), addr));
        self.inner.cv.notify_all();
    }

    /// A cheap cloneable feed handle for the server driver.
    pub fn handle(&self) -> DeliveryHandle {
        DeliveryHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Queue one reaction for delivery. Returns `false` when no route
    /// matches `to` (counted in [`DeliveryStats::unrouted`]) — such
    /// reactions are the submitter's to handle, not the agent's.
    pub fn enqueue(&mut self, to: &str, at: Timestamp, payload: &Term) -> bool {
        let queued = enqueue_inner(&self.inner, to, at, payload, None, 0);
        if queued {
            self.ensure_worker(to);
        }
        queued
    }

    /// Spawn the destination's worker thread if it does not exist yet.
    /// Called on the enqueue path; `DeliveryHandle` feeds (the server
    /// driver) rely on [`DeliveryAgent::pump`] being called from the
    /// owning thread to pick up new destinations.
    fn ensure_worker(&mut self, to: &str) {
        if self.workers.iter().any(|(d, _)| d == to) {
            return;
        }
        let dest = to.to_string();
        let inner = Arc::clone(&self.inner);
        let name = format!("reweb-delivery-{}", self.workers.len());
        if let Ok(h) = std::thread::Builder::new()
            .name(name)
            .spawn(move || worker_loop(inner, dest))
        {
            self.workers.push((to.to_string(), h));
        }
    }

    /// Spawn workers for destinations that gained traffic through a
    /// [`DeliveryHandle`] (the server driver cannot spawn them itself).
    /// Cheap; call whenever convenient — [`DeliveryAgent::flush`] calls
    /// it on every poll.
    pub fn pump(&mut self) {
        let dests: Vec<String> = {
            let s = self.inner.state.lock().expect("delivery state poisoned");
            s.queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(d, _)| d.clone())
                .collect()
        };
        for d in dests {
            self.ensure_worker(&d);
        }
    }

    /// Deliveries currently queued (not yet acked or dead-lettered).
    pub fn pending(&self) -> usize {
        let s = self.inner.state.lock().expect("delivery state poisoned");
        s.queues.values().map(|q| q.len()).sum()
    }

    /// Wait until every queued delivery settled (acked or
    /// dead-lettered), or `timeout` passed. Returns `true` on settle.
    pub fn flush(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.pump();
            if self.pending() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Snapshot the agent's counters.
    pub fn stats(&self) -> DeliveryStats {
        self.inner
            .state
            .lock()
            .expect("delivery state poisoned")
            .stats
            .clone()
    }

    /// The dead-letter log, oldest first — the inspection surface.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.inner
            .state
            .lock()
            .expect("delivery state poisoned")
            .dead
            .clone()
    }

    /// Re-queue every dead letter under its original key and clear the
    /// log. Returns how many were re-queued. Call once the destination
    /// is reachable again; the receiver's ledger absorbs any that had
    /// in fact arrived before their acks were lost.
    pub fn redeliver(&mut self) -> std::io::Result<usize> {
        let dead: Vec<DeadLetter> = {
            let mut s = self.inner.state.lock().expect("delivery state poisoned");
            let dead = std::mem::take(&mut s.dead);
            if let Some(f) = s.dead_file.as_mut() {
                f.set_len(0)?;
            }
            dead
        };
        let n = dead.len();
        for d in &dead {
            let queued = enqueue_inner(&self.inner, &d.to, d.at, &d.payload, Some(d.seq), 0);
            let mut s = self.inner.state.lock().expect("delivery state poisoned");
            if queued {
                // enqueue_inner counted it as a fresh enqueue; account
                // it as a redelivery instead.
                s.stats.enqueued -= 1;
                s.stats.redelivered += 1;
            } else {
                // Still unroutable: keep it dead rather than lose it.
                s.stats.unrouted -= 1;
                let d = d.clone();
                if let Some(f) = s.dead_file.as_mut() {
                    let _ = write_frame(f, &dead_letter_to_bytes(&d));
                    let _ = f.flush();
                }
                s.dead.push(d);
            }
        }
        self.pump();
        Ok(n - self
            .inner
            .state
            .lock()
            .expect("delivery state poisoned")
            .dead
            .len())
    }

    /// Fault injection: fail the next `n` connect attempts to
    /// destinations matching `prefix`.
    pub fn inject_connect_failures(&self, prefix: impl Into<String>, n: u32) {
        self.inner
            .fault_connect
            .lock()
            .expect("fault table poisoned")
            .push((prefix.into(), n));
    }

    /// Fault injection: for the next `n` pushes to destinations
    /// matching `prefix`, drop the connection after writing the
    /// `deliver` frame but before reading the ack — the classic
    /// duplicate-generating fault.
    pub fn inject_drop_before_ack(&self, prefix: impl Into<String>, n: u32) {
        self.inner
            .fault_drop_ack
            .lock()
            .expect("fault table poisoned")
            .push((prefix.into(), n));
    }

    /// Fault injection: delay every write to destinations matching
    /// `prefix` by `delay` (a slow peer; exercises the io timeout when
    /// `delay` exceeds it, plain latency otherwise).
    pub fn inject_slow_peer(&self, prefix: impl Into<String>, delay: Duration) {
        self.inner
            .fault_slow
            .lock()
            .expect("fault table poisoned")
            .push((prefix.into(), delay));
    }

    /// Stop the workers (the attempt in flight finishes first) and join
    /// them. Queued-but-unsettled deliveries stay in the outbox journal
    /// for the next incarnation. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
        for (_, h) in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for DeliveryAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn open_dead_letter(path: &Path) -> std::io::Result<(File, Vec<DeadLetter>)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let scan = scan_frames(&bytes);
    let mut dead = Vec::with_capacity(scan.frames.len());
    for (_, payload) in &scan.frames {
        dead.push(dead_letter_from_bytes(payload)?);
    }
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    if (bytes.len() as u64) > scan.valid_len {
        file.set_len(scan.valid_len)?;
    }
    Ok((file, dead))
}

/// One fault-table lookup-and-consume: decrement the matching entry's
/// budget, dropping it at zero. Returns whether a fault fired.
fn consume_fault(table: &Mutex<Vec<(String, u32)>>, to: &str) -> bool {
    let mut t = table.lock().expect("fault table poisoned");
    if let Some(i) = prefix_entry(
        &t.iter().map(|(p, n)| (p.clone(), *n)).collect::<Vec<_>>(),
        to,
    ) {
        if t[i].1 > 0 {
            t[i].1 -= 1;
            if t[i].1 == 0 {
                t.remove(i);
            }
            return true;
        }
    }
    false
}

fn slow_delay(table: &Mutex<Vec<(String, Duration)>>, to: &str) -> Option<Duration> {
    let t = table.lock().expect("fault table poisoned");
    prefix_entry(
        &t.iter().map(|(p, d)| (p.clone(), *d)).collect::<Vec<_>>(),
        to,
    )
    .map(|i| t[i].1)
}

/// One dial-and-push attempt against an open question: how did it end?
enum Attempt {
    /// The peer acked; `true` when it flagged the key duplicate.
    Acked(bool),
    /// Anything retryable: connect/IO failure, `busy`, `throttled`,
    /// `shutting-down`, dropped connection.
    Failed,
}

/// Read one reply frame from a delivery session (with the session's
/// read timeout in force).
fn read_reply(stream: &mut TcpStream) -> std::io::Result<Reply> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "oversized reply frame",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "reply frame CRC mismatch",
        ));
    }
    Reply::decode(&payload).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))
}

/// Dial `addr` and run the `hello` handshake as a delivery session.
fn dial(inner: &AgentInner, addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect_timeout(&addr, inner.cfg.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(inner.cfg.io_timeout))?;
    stream.set_write_timeout(Some(inner.cfg.io_timeout))?;
    stream.write_all(
        &Request::Hello {
            from: inner.cfg.from.clone(),
            credentials: None,
            gateway: false,
        }
        .encode(),
    )?;
    match read_reply(&mut stream)? {
        Reply::Welcome { .. } => Ok(stream),
        other => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("handshake refused: {other:?}"),
        )),
    }
}

/// Push the queue head over an open session and await its fate.
fn push_one(
    inner: &AgentInner,
    stream: &mut TcpStream,
    to: &str,
    seq: u64,
    at: Timestamp,
    payload: &Term,
) -> Attempt {
    if let Some(d) = slow_delay(&inner.fault_slow, to) {
        std::thread::sleep(d);
    }
    let key = format!("{}#{}", inner.cfg.from, seq);
    let req = Request::Deliver {
        id: seq,
        key,
        at: Some(at),
        payload: payload.clone(),
    };
    if stream.write_all(&req.encode()).is_err() {
        return Attempt::Failed;
    }
    if consume_fault(&inner.fault_drop_ack, to) {
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return Attempt::Failed;
    }
    loop {
        match read_reply(stream) {
            Ok(Reply::Accepted { id, duplicate }) if id == seq => return Attempt::Acked(duplicate),
            // Reactions provoked by our own delivery (the receiver's
            // rules fired) are reported back on this session; they are
            // not ours to consume — skip them.
            Ok(Reply::Reaction { .. }) => {}
            Ok(Reply::Busy { retry_ms, .. }) | Ok(Reply::Throttled { retry_ms, .. }) => {
                // The peer is alive but pushing back: honor its hint,
                // then count a failed attempt (the ladder redials).
                std::thread::sleep(Duration::from_millis(
                    retry_ms.min(inner.cfg.backoff.max_ms),
                ));
                return Attempt::Failed;
            }
            Ok(Reply::Error { code, retry_ms, .. }) => {
                if code == ErrorCode::ShuttingDown || code == ErrorCode::Busy {
                    if let Some(ms) = retry_ms {
                        std::thread::sleep(Duration::from_millis(ms.min(inner.cfg.backoff.max_ms)));
                    }
                }
                return Attempt::Failed;
            }
            Ok(_) => {}
            Err(_) => return Attempt::Failed,
        }
    }
}

/// The per-destination worker: deliver the queue head, in order, until
/// shutdown. Sleeps on the backoff ladder between failed attempts;
/// dead-letters the head when its budget is spent.
fn worker_loop(inner: Arc<AgentInner>, dest: String) {
    let mut session: Option<TcpStream> = None;
    loop {
        // Wait for work (or shutdown).
        let head = {
            let mut s = inner.state.lock().expect("delivery state poisoned");
            loop {
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match s.queues.get(&dest).and_then(|q| q.front()) {
                    Some(h) => {
                        break (h.seq, h.at, h.payload.clone(), h.attempts, h.trace);
                    }
                    None => {
                        let (guard, _) = inner
                            .cv
                            .wait_timeout(s, Duration::from_millis(20))
                            .expect("delivery state poisoned");
                        s = guard;
                    }
                }
            }
        };
        let (seq, at, payload, attempts, trace) = head;

        // Budget spent: dead-letter the head, freeing the queue.
        if attempts >= inner.cfg.retry_budget {
            session = None;
            let mut s = inner.state.lock().expect("delivery state poisoned");
            if let Some(q) = s.queues.get_mut(&dest) {
                q.pop_front();
            }
            let d = DeadLetter {
                seq,
                to: dest.clone(),
                at,
                payload,
                attempts,
            };
            if let Some(f) = s.dead_file.as_mut() {
                let _ = write_frame(f, &dead_letter_to_bytes(&d));
                let _ = f.flush();
                let _ = f.sync_data();
            }
            s.dead.push(d);
            s.stats.dead_lettered += 1;
            if let Some(ob) = s.outbox.as_mut() {
                let _ = ob.settle(seq, Settle::DeadLettered);
            }
            continue;
        }

        // Make sure we hold an open session (dial if not).
        if session.is_none() {
            let addr = {
                let routes = inner.routes.lock().expect("route table poisoned");
                resolve(&routes, &dest)
            };
            let dialed = match addr {
                Some(addr) if !consume_fault(&inner.fault_connect, &dest) => {
                    dial(&inner, addr).ok()
                }
                _ => None,
            };
            match dialed {
                Some(st) => session = Some(st),
                None => {
                    fail_head(&inner, &dest, seq);
                    backoff_sleep(&inner, attempts, seq);
                    continue;
                }
            }
        }

        let obs = Arc::clone(&inner.obs.lock().expect("obs handle poisoned"));
        let rtt_start = if obs.is_enabled() { obs.now_ns() } else { 0 };
        let outcome = push_one(
            &inner,
            session.as_mut().expect("session just ensured"),
            &dest,
            seq,
            at,
            &payload,
        );
        match outcome {
            Attempt::Acked(duplicate) => {
                if obs.is_enabled() {
                    // Round-trip of the *successful* attempt: write,
                    // peer ingests, ack read. Failed attempts are
                    // retries, not latency samples.
                    let rtt = obs.now_ns().saturating_sub(rtt_start);
                    obs.delivery.record(rtt);
                    if trace != 0 {
                        obs.span(trace, reweb_obs::Stage::Delivery, rtt_start, rtt);
                    }
                }
                let mut s = inner.state.lock().expect("delivery state poisoned");
                if let Some(q) = s.queues.get_mut(&dest) {
                    q.pop_front();
                }
                s.stats.delivered += 1;
                if duplicate {
                    s.stats.duplicate_acks += 1;
                }
                if let Some(ob) = s.outbox.as_mut() {
                    let _ = ob.settle(seq, Settle::Acked);
                }
            }
            Attempt::Failed => {
                session = None;
                fail_head(&inner, &dest, seq);
                backoff_sleep(&inner, attempts, seq);
            }
        }
    }
}

/// Charge one failed attempt against the queue head (if it is still the
/// same delivery).
fn fail_head(inner: &AgentInner, dest: &str, seq: u64) {
    let mut s = inner.state.lock().expect("delivery state poisoned");
    s.stats.failed_attempts += 1;
    if let Some(h) = s.queues.get_mut(dest).and_then(|q| q.front_mut()) {
        if h.seq == seq {
            h.attempts += 1;
        }
    }
}

/// Sleep one backoff rung, interruptible by shutdown.
fn backoff_sleep(inner: &AgentInner, attempt: u32, seed: u64) {
    let ms = inner.cfg.backoff.delay_with_jitter_ms(attempt, seed);
    let deadline = Instant::now() + Duration::from_millis(ms);
    let mut s = inner.state.lock().expect("delivery state poisoned");
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let (guard, _) = inner
            .cv
            .wait_timeout(s, (deadline - now).min(Duration::from_millis(20)))
            .expect("delivery state poisoned");
        s = guard;
    }
}

/// The receiver half of at-least-once: a set of already-ingested
/// delivery keys, optionally journaled to disk (same CRC framing as
/// everything else) so a restarted server still recognizes retries of
/// reactions it ingested before the crash. The in-order entry list
/// doubles as the inspection surface the equivalence tests compare.
pub struct DeliveryLedger {
    file: Option<File>,
    seen: std::collections::HashSet<String>,
    entries: Vec<(String, Term)>,
}

impl DeliveryLedger {
    /// A purely in-memory ledger (a process restart forgets it — only
    /// safe when the engine behind it is not durable either).
    pub fn in_memory() -> DeliveryLedger {
        DeliveryLedger {
            file: None,
            seen: std::collections::HashSet::new(),
            entries: Vec::new(),
        }
    }

    /// Open (creating if absent) a journaled ledger, healing a torn
    /// tail and seeding the seen-set from the surviving records.
    pub fn open(path: &Path) -> std::io::Result<DeliveryLedger> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let scan = scan_frames(&bytes);
        let mut seen = std::collections::HashSet::new();
        let mut entries = Vec::new();
        for (_, payload) in &scan.frames {
            let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
            let text = std::str::from_utf8(payload).map_err(|_| bad("ledger entry not UTF-8"))?;
            let t = parse_term(text).map_err(|_| bad("unparsable ledger entry"))?;
            let key = t
                .children()
                .iter()
                .find(|c| c.label() == Some("key"))
                .map(|c| c.text_content())
                .ok_or_else(|| bad("ledger entry without key"))?;
            let payload = t
                .children()
                .iter()
                .find(|c| c.label() == Some("payload"))
                .and_then(|w| w.children().first())
                .cloned()
                .ok_or_else(|| bad("ledger entry without payload"))?;
            seen.insert(key.clone());
            entries.push((key, payload));
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        if (bytes.len() as u64) > scan.valid_len {
            file.set_len(scan.valid_len)?;
        }
        Ok(DeliveryLedger {
            file: Some(file),
            seen,
            entries,
        })
    }

    /// Has this key been ingested already?
    pub fn contains(&self, key: &str) -> bool {
        self.seen.contains(key)
    }

    /// Record one ingested delivery. Journaled (and flushed) before the
    /// ack goes out, so a crash after the ack still remembers the key.
    pub fn record(&mut self, key: &str, payload: &Term) {
        if !self.seen.insert(key.to_string()) {
            return;
        }
        self.entries.push((key.to_string(), payload.clone()));
        if let Some(f) = self.file.as_mut() {
            let bytes = Term::build("d")
                .unordered()
                .field("key", key)
                .child(Term::ordered("payload", vec![payload.clone()]))
                .finish()
                .to_string()
                .into_bytes();
            let _ = write_frame(f, &bytes);
            let _ = f.flush();
            let _ = f.sync_data();
        }
    }

    /// Every ingested delivery `(key, payload)`, in ingestion order.
    pub fn entries(&self) -> &[(String, Term)] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve_by_longest_prefix() {
        let addr1: SocketAddr = "127.0.0.1:1001".parse().unwrap();
        let addr2: SocketAddr = "127.0.0.1:1002".parse().unwrap();
        let routes = vec![
            ("http://b/".to_string(), addr1),
            ("http://b/special/".to_string(), addr2),
        ];
        assert_eq!(resolve(&routes, "http://b/x"), Some(addr1));
        assert_eq!(resolve(&routes, "http://b/special/x"), Some(addr2));
        assert_eq!(resolve(&routes, "http://c/x"), None);
    }

    #[test]
    fn dead_letters_round_trip_through_frames() {
        let d = DeadLetter {
            seq: 7,
            to: "http://b/".into(),
            at: Timestamp(123),
            payload: parse_term("ship{item[\"book\"]}").unwrap(),
            attempts: 3,
        };
        let back = dead_letter_from_bytes(&dead_letter_to_bytes(&d)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn ledger_journal_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("reweb-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut l = DeliveryLedger::open(&path).unwrap();
            l.record("a#0", &Term::elem("x"));
            l.record("a#1", &Term::elem("y"));
            l.record("a#0", &Term::elem("x")); // idempotent
            assert_eq!(l.entries().len(), 2);
        }
        let l = DeliveryLedger::open(&path).unwrap();
        assert!(l.contains("a#0") && l.contains("a#1") && !l.contains("a#2"));
        assert_eq!(l.entries()[1].1, Term::elem("y"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unrouted_reactions_are_counted_not_queued() {
        let mut agent = DeliveryAgent::new(DeliveryConfig::default()).unwrap();
        assert!(!agent.enqueue("http://nowhere/x", Timestamp(1), &Term::elem("e")));
        assert_eq!(agent.pending(), 0);
        assert_eq!(agent.stats().unrouted, 1);
        agent.shutdown();
    }
}
