//! Admission limits and retry policy: a token bucket with an explicit
//! clock, and the one shared [`BackoffPolicy`] every `retry_ms` the
//! tier emits or honors comes from.
//!
//! Each connection owns one [`TokenBucket`]; every accepted event costs
//! one token. The clock is passed in (an [`Instant`]) rather than read
//! inside, so tests drive the bucket deterministically.

use std::time::{Duration, Instant};

/// The tier's single retry/backoff policy: exponential delays from
/// `base_ms` doubling per attempt up to `max_ms`, plus bounded
/// *deterministic* jitter (a hash of the caller's seed — no RNG, so
/// fault-injection tests replay byte-identically).
///
/// Every `retry_ms` in the protocol traces back here instead of to a
/// scattered literal: the server's `busy` replies and at-capacity
/// accept refusals suggest [`BackoffPolicy::BUSY`]'s first delay, and
/// the delivery agent ([`crate::delivery`]) walks the full exponential
/// ladder of its configured policy between redial attempts. (The
/// `throttled` reply is the one exception by design: its `retry_ms` is
/// not a policy choice but the *computed* time until the token bucket
/// refills one token.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Cap on the exponential ladder, in milliseconds.
    pub max_ms: u64,
    /// Largest jitter added on top of a rung, in milliseconds
    /// (`0` disables jitter).
    pub jitter_ms: u64,
}

impl BackoffPolicy {
    /// The backpressure suggestion the server attaches to `busy`
    /// replies and at-capacity accept refusals: start at 10 ms (the
    /// driver drains a full default batch well within that), cap low —
    /// the queue empties in milliseconds or the server is truly
    /// saturated, and either way the client learns more by asking
    /// again soon.
    pub const BUSY: BackoffPolicy = BackoffPolicy {
        base_ms: 10,
        max_ms: 160,
        jitter_ms: 0,
    };

    /// The rung of the exponential ladder for retry number `attempt`
    /// (0-based): `min(base_ms << attempt, max_ms)`, jitter-free.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let shifted = self
            .base_ms
            .checked_shl(attempt.min(32))
            .unwrap_or(self.max_ms);
        shifted.min(self.max_ms)
    }

    /// [`BackoffPolicy::delay_ms`] plus deterministic jitter in
    /// `[0, jitter_ms]`, derived by hashing `seed` with the attempt
    /// number (splitmix64). Same seed, same schedule — which is what
    /// keeps the fault-injected delivery tests replayable — while
    /// distinct seeds (one per queued reaction) still decorrelate
    /// retry storms against a recovering destination.
    pub fn delay_with_jitter_ms(&self, attempt: u32, seed: u64) -> u64 {
        let rung = self.delay_ms(attempt);
        if self.jitter_ms == 0 {
            return rung;
        }
        let mut z = seed
            .wrapping_add(attempt as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        rung + z % (self.jitter_ms + 1)
    }
}

/// Per-client rate limit: sustained events/second plus a burst
/// allowance. `events_per_sec == 0` disables the limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, in events per second.
    pub events_per_sec: u32,
    /// Bucket capacity: how many events may arrive back-to-back before
    /// throttling starts.
    pub burst: u32,
}

impl RateLimit {
    /// A limit of `events_per_sec` with an equal burst allowance.
    pub fn per_sec(events_per_sec: u32) -> RateLimit {
        RateLimit {
            events_per_sec,
            burst: events_per_sec.max(1),
        }
    }
}

/// The classic token bucket: `burst` tokens capacity, refilled at
/// `events_per_sec`, one token per admitted event.
#[derive(Debug)]
pub struct TokenBucket {
    limit: RateLimit,
    /// Current fill, in micro-tokens (×1e6) so sub-second refill
    /// accumulates without floats.
    micro_tokens: u64,
    last: Instant,
}

/// What [`TokenBucket::admit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A token was available and consumed.
    Admitted,
    /// The bucket is empty; retry after roughly this many milliseconds
    /// (time until one token refills).
    Throttled {
        /// Suggested backoff, reported to the client verbatim in the
        /// `throttled` reply.
        retry_ms: u64,
    },
}

impl TokenBucket {
    /// A full bucket for the given limit, as of `now`.
    pub fn new(limit: RateLimit, now: Instant) -> TokenBucket {
        TokenBucket {
            limit,
            micro_tokens: limit.burst as u64 * 1_000_000,
            last: now,
        }
    }

    /// Admit or throttle one event arriving at `now`.
    pub fn admit(&mut self, now: Instant) -> Admission {
        if self.limit.events_per_sec == 0 {
            return Admission::Admitted;
        }
        let cap = self.limit.burst as u64 * 1_000_000;
        let elapsed = now.saturating_duration_since(self.last);
        self.last = now;
        let refill = elapsed.as_micros() as u64 * self.limit.events_per_sec as u64;
        self.micro_tokens = (self.micro_tokens + refill).min(cap);
        if self.micro_tokens >= 1_000_000 {
            self.micro_tokens -= 1_000_000;
            Admission::Admitted
        } else {
            let missing = 1_000_000 - self.micro_tokens;
            let retry = Duration::from_micros(missing / self.limit.events_per_sec as u64);
            Admission::Throttled {
                retry_ms: (retry.as_millis() as u64).max(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateLimit::per_sec(10), t0);
        for _ in 0..10 {
            assert_eq!(b.admit(t0), Admission::Admitted);
        }
        assert!(matches!(b.admit(t0), Admission::Throttled { .. }));
        // 100ms refills exactly one token at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(b.admit(t1), Admission::Admitted);
        assert!(matches!(b.admit(t1), Admission::Throttled { .. }));
    }

    #[test]
    fn zero_rate_disables_the_limit() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            RateLimit {
                events_per_sec: 0,
                burst: 0,
            },
            t0,
        );
        for _ in 0..10_000 {
            assert_eq!(b.admit(t0), Admission::Admitted);
        }
    }
}
