//! Per-client rate limiting: a token bucket with an explicit clock.
//!
//! Each connection owns one [`TokenBucket`]; every accepted event costs
//! one token. The clock is passed in (an [`Instant`]) rather than read
//! inside, so tests drive the bucket deterministically.

use std::time::{Duration, Instant};

/// Per-client rate limit: sustained events/second plus a burst
/// allowance. `events_per_sec == 0` disables the limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, in events per second.
    pub events_per_sec: u32,
    /// Bucket capacity: how many events may arrive back-to-back before
    /// throttling starts.
    pub burst: u32,
}

impl RateLimit {
    /// A limit of `events_per_sec` with an equal burst allowance.
    pub fn per_sec(events_per_sec: u32) -> RateLimit {
        RateLimit {
            events_per_sec,
            burst: events_per_sec.max(1),
        }
    }
}

/// The classic token bucket: `burst` tokens capacity, refilled at
/// `events_per_sec`, one token per admitted event.
#[derive(Debug)]
pub struct TokenBucket {
    limit: RateLimit,
    /// Current fill, in micro-tokens (×1e6) so sub-second refill
    /// accumulates without floats.
    micro_tokens: u64,
    last: Instant,
}

/// What [`TokenBucket::admit`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A token was available and consumed.
    Admitted,
    /// The bucket is empty; retry after roughly this many milliseconds
    /// (time until one token refills).
    Throttled {
        /// Suggested backoff, reported to the client verbatim in the
        /// `throttled` reply.
        retry_ms: u64,
    },
}

impl TokenBucket {
    /// A full bucket for the given limit, as of `now`.
    pub fn new(limit: RateLimit, now: Instant) -> TokenBucket {
        TokenBucket {
            limit,
            micro_tokens: limit.burst as u64 * 1_000_000,
            last: now,
        }
    }

    /// Admit or throttle one event arriving at `now`.
    pub fn admit(&mut self, now: Instant) -> Admission {
        if self.limit.events_per_sec == 0 {
            return Admission::Admitted;
        }
        let cap = self.limit.burst as u64 * 1_000_000;
        let elapsed = now.saturating_duration_since(self.last);
        self.last = now;
        let refill = elapsed.as_micros() as u64 * self.limit.events_per_sec as u64;
        self.micro_tokens = (self.micro_tokens + refill).min(cap);
        if self.micro_tokens >= 1_000_000 {
            self.micro_tokens -= 1_000_000;
            Admission::Admitted
        } else {
            let missing = 1_000_000 - self.micro_tokens;
            let retry = Duration::from_micros(missing / self.limit.events_per_sec as u64);
            Admission::Throttled {
                retry_ms: (retry.as_millis() as u64).max(1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle_then_refill() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(RateLimit::per_sec(10), t0);
        for _ in 0..10 {
            assert_eq!(b.admit(t0), Admission::Admitted);
        }
        assert!(matches!(b.admit(t0), Admission::Throttled { .. }));
        // 100ms refills exactly one token at 10/s.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(b.admit(t1), Admission::Admitted);
        assert!(matches!(b.admit(t1), Admission::Throttled { .. }));
    }

    #[test]
    fn zero_rate_disables_the_limit() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(
            RateLimit {
                events_per_sec: 0,
                burst: 0,
            },
            t0,
        );
        for _ in 0..10_000 {
            assert_eq!(b.admit(t0), Admission::Admitted);
        }
    }
}
