//! A small blocking client for the wire protocol — the reference
//! implementation the tests, the benchmarks, and the websim TCP front
//! drive. One connection, lockstep or pipelined: send any number of
//! events, then [`NetClient::sync`] to flush and collect the replies.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use reweb_core::Credentials;
use reweb_term::frame::{crc32, FRAME_HEADER_LEN, MAX_FRAME_LEN};
use reweb_term::{Term, Timestamp};

use crate::wire::{Reply, Request};

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// A blocking protocol client. Every call does exactly what it says on
/// the socket; there is no hidden buffering beyond the OS's.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
}

impl NetClient {
    /// Connect as an ordinary session: `hello`, await `welcome`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        from: impl Into<String>,
    ) -> std::io::Result<NetClient> {
        NetClient::connect_with(addr, from, None, false)
    }

    /// Connect with full handshake control: optional credentials and
    /// the gateway flag (per-event `from`/`cred` overrides).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        from: impl Into<String>,
        credentials: Option<Credentials>,
        gateway: bool,
    ) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = NetClient { stream, next_id: 1 };
        c.send(&Request::Hello {
            from: from.into(),
            credentials,
            gateway,
        })?;
        match c.recv()? {
            Reply::Welcome { .. } => Ok(c),
            Reply::Error { code, detail, .. } => {
                Err(bad_data(format!("handshake refused: {code}: {detail}")))
            }
            other => Err(bad_data(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one request envelope.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.stream.write_all(&req.encode())
    }

    /// Write raw bytes to the socket — fault injection for tests (e.g.
    /// a frame with a corrupt CRC).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Send one event; returns the correlation id its replies carry.
    pub fn send_event(&mut self, payload: Term, at: Option<Timestamp>) -> std::io::Result<u64> {
        let id = self.fresh_id();
        self.send(&Request::Event {
            id,
            at,
            from: None,
            credentials: None,
            payload,
        })?;
        Ok(id)
    }

    /// Gateway sessions: send one event on behalf of another sender.
    pub fn send_event_as(
        &mut self,
        from: impl Into<String>,
        credentials: Option<Credentials>,
        payload: Term,
        at: Option<Timestamp>,
    ) -> std::io::Result<u64> {
        let id = self.fresh_id();
        self.send(&Request::Event {
            id,
            at,
            from: Some(from.into()),
            credentials,
            payload,
        })?;
        Ok(id)
    }

    /// Send an explicit clock advance; returns its correlation id.
    pub fn advance(&mut self, at: Timestamp) -> std::io::Result<u64> {
        let id = self.fresh_id();
        self.send(&Request::Advance { id, at })?;
        Ok(id)
    }

    /// Flush: send a `sync` marker and read replies until its `done`
    /// arrives. Returns everything that came back before the `done` —
    /// reactions, errors, and backpressure replies for every request
    /// sent since the previous sync.
    pub fn sync(&mut self) -> std::io::Result<Vec<Reply>> {
        let id = self.fresh_id();
        self.send(&Request::Sync { id })?;
        let mut replies = Vec::new();
        loop {
            match self.recv()? {
                Reply::Done { id: done } if done == id => return Ok(replies),
                r => replies.push(r),
            }
        }
    }

    /// Query the server's observability snapshot: send `stats{}` and
    /// block until the matching `stats` reply. Returns the `stats{…}`
    /// body term (parse histograms out of it with
    /// `reweb_obs::stats_histogram`). Replies for earlier pipelined
    /// requests that arrive first are discarded — use a lockstep
    /// [`NetClient::sync`] turn before querying if you need them.
    pub fn stats(&mut self) -> std::io::Result<Term> {
        let id = self.fresh_id();
        self.send(&Request::Stats { id })?;
        loop {
            match self.recv()? {
                Reply::Stats { id: got, body } if got == id => return Ok(body),
                Reply::Error { code, detail, .. } => {
                    return Err(bad_data(format!("stats refused: {code}: {detail}")))
                }
                _ => {}
            }
        }
    }

    /// Query one trace's recorded span chain: send `trace{id[…]}` and
    /// block until the matching `trace` reply. Returns the `trace{…}`
    /// body term; an unknown or evicted trace id yields an empty chain.
    pub fn trace(&mut self, trace: u64) -> std::io::Result<Term> {
        let id = self.fresh_id();
        self.send(&Request::Trace { id, trace })?;
        loop {
            match self.recv()? {
                Reply::Trace { id: got, body } if got == id => return Ok(body),
                Reply::Error { code, detail, .. } => {
                    return Err(bad_data(format!("trace refused: {code}: {detail}")))
                }
                _ => {}
            }
        }
    }

    /// [`NetClient::sync`], returning each reply's raw frame payload
    /// bytes — the byte-identity surface the differential tests compare.
    /// The `done` marker is decoded only to detect the flush boundary
    /// and is not returned.
    pub fn sync_raw(&mut self) -> std::io::Result<Vec<Vec<u8>>> {
        let id = self.fresh_id();
        self.send(&Request::Sync { id })?;
        let mut replies = Vec::new();
        loop {
            let payload = self.recv_raw()?;
            if let Ok(Reply::Done { id: done }) = Reply::decode(&payload) {
                if done == id {
                    return Ok(replies);
                }
            }
            replies.push(payload);
        }
    }

    /// Read one reply frame (blocking).
    pub fn recv(&mut self) -> std::io::Result<Reply> {
        let payload = self.recv_raw()?;
        Reply::decode(&payload).map_err(|e| bad_data(e.0))
    }

    /// Read one reply as raw payload bytes (byte-level assertions in
    /// tests).
    pub fn recv_raw(&mut self) -> std::io::Result<Vec<u8>> {
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(bad_data(format!("oversized reply frame: {len} bytes")));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        if crc32(&payload) != crc {
            return Err(bad_data("reply frame CRC mismatch"));
        }
        Ok(payload)
    }

    /// Polite close: send `bye` and drop the connection.
    pub fn bye(mut self) -> std::io::Result<()> {
        self.send(&Request::Bye)
    }
}
