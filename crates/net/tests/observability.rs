//! The observability acceptance wall: a two-node run (sender A with
//! rules + delivery agent, receiver B) answering `stats{}` over the
//! wire with mergeable latency histograms, and `trace{id}` returning
//! the full ingress→delivery span chain of one traced event.

use std::path::PathBuf;
use std::time::Duration;

use reweb_core::ReactiveEngine;
use reweb_net::{DeliveryAgent, DeliveryConfig, NetClient, NetConfig, NetServer};
use reweb_obs::{stats_histogram, Span, Stage};
use reweb_term::{parse_term, Term, Timestamp};

fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("reweb-obs-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn wait_until(what: &str, f: impl Fn() -> bool) {
    for _ in 0..5000 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// Spans of a `trace{…}` reply body, in recording order.
fn spans_of(body: &Term) -> Vec<Span> {
    assert_eq!(body.label(), Some("trace"));
    body.children()
        .iter()
        .filter(|c| c.label() == Some("span"))
        .map(|c| Span::from_term(c).expect("well-formed span"))
        .collect()
}

#[test]
fn two_node_stats_and_trace_over_the_wire() {
    let dir = tmp("two-node");
    const N: usize = 5;

    // Node B: a bare receiver.
    let b = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://b/".to_string()),
        NetConfig::default(),
    )
    .unwrap();
    b.obs().enable();

    // Node A: forwards every order into B's URI space via the agent.
    let mut agent = DeliveryAgent::new(DeliveryConfig {
        from: "http://a/".into(),
        outbox: Some(dir.join("outbox.log")),
        ..DeliveryConfig::default()
    })
    .unwrap();
    agent.add_route("http://b/", b.local_addr());
    let mut engine = ReactiveEngine::new("http://a/".to_string());
    engine
        .install_program(
            r#"RULE fwd ON order{{id[[var O]]}} DO SEND ship{id[var O]} TO "http://b/recv" END"#,
        )
        .unwrap();
    let a = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
    a.attach_delivery(agent.handle());
    a.obs().enable();

    // Drive N orders through A, fenced, and wait for B to ingest all
    // pushed reactions.
    let mut client = NetClient::connect(a.local_addr(), "http://client/").unwrap();
    for i in 0..N {
        client
            .send_event(
                parse_term(&format!("order{{id[\"o{i}\"]}}")).unwrap(),
                Some(Timestamp(i as u64 * 10)),
            )
            .unwrap();
        client.sync().unwrap();
    }
    assert!(agent.flush(Duration::from_secs(10)), "deliveries settle");
    wait_until("B ingests all pushes", || b.delivered().len() == N);

    // stats{} over the wire, from both nodes.
    let a_stats = client.stats().unwrap();
    let mut b_client = NetClient::connect(b.local_addr(), "http://probe/").unwrap();
    let b_stats = b_client.stats().unwrap();
    assert_eq!(a_stats.label(), Some("stats"));

    // Batch-latency histograms exist on both sides and merge (the
    // sharded-engine contract: shard snapshots sum bucket-wise).
    let a_batch = stats_histogram(&a_stats, "batch").expect("A batch histogram");
    let b_batch = stats_histogram(&b_stats, "batch").expect("B batch histogram");
    assert!(a_batch.count() >= N as u64, "A ran at least {N} batches");
    assert!(!b_batch.is_empty(), "B's ingestion was measured");
    let mut merged = a_batch.clone();
    merged.merge(&b_batch);
    assert_eq!(merged.count(), a_batch.count() + b_batch.count());
    let (p50, p99) = (merged.p50(), merged.p99());
    assert!(p50 > 0 && p50 <= p99, "quantiles ordered: {p50} <= {p99}");
    assert!(p99 <= merged.max().next_power_of_two().max(merged.max()));

    // A's delivery round-trip histogram saw every acked push.
    let a_rtt = stats_histogram(&a_stats, "delivery").expect("A delivery histogram");
    assert_eq!(a_rtt.count(), N as u64);

    // trace{id}: the first order got trace id 1; its chain must span
    // ingress to delivery ack.
    let body = client.trace(1).unwrap();
    let spans = spans_of(&body);
    assert!(!spans.is_empty(), "trace 1 was recorded");
    assert!(spans.iter().all(|s| s.trace == 1));
    let stages: Vec<Stage> = spans.iter().map(|s| s.stage).collect();
    for want in [
        Stage::Admission,
        Stage::Alpha,
        Stage::Beta,
        Stage::Fire,
        Stage::Reaction,
        Stage::Outbox,
        Stage::Delivery,
    ] {
        assert!(stages.contains(&want), "chain misses {want}: {stages:?}");
    }
    // Causal order: admission opened before the delivery ack closed.
    let adm = spans.iter().find(|s| s.stage == Stage::Admission).unwrap();
    let del = spans.iter().find(|s| s.stage == Stage::Delivery).unwrap();
    assert!(adm.start_ns <= del.start_ns + del.dur_ns);
    // An unknown trace answers an empty chain, not an error.
    assert!(spans_of(&client.trace(u64::MAX).unwrap()).is_empty());

    agent.shutdown();
    drop((a, b));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The runtime toggle: with observability left disabled (the default),
/// `stats{}` still answers — flagged disabled, with empty histograms —
/// and traces record nothing.
#[test]
fn disabled_observability_answers_empty_stats() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://x/".to_string()),
        NetConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.local_addr(), "http://client/").unwrap();
    client
        .send_event(parse_term("ping{}").unwrap(), Some(Timestamp(1)))
        .unwrap();
    client.sync().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.label(), Some("stats"));
    let batch = stats_histogram(&stats, "batch").expect("histogram present even when disabled");
    assert!(batch.is_empty(), "disabled path records nothing");
    assert!(spans_of(&client.trace(1).unwrap()).is_empty());
}
