//! The loopback differential wall: a message stream delivered over TCP
//! produces **byte-identical** outputs to the same stream delivered
//! in-process — including under injected malformed frames and mid-batch
//! client disconnects, which must degrade per-connection only.
//!
//! Method: every network run is driven in *lockstep phases* so the
//! global arrival order at the driver is fully determined — the main
//! client flushes with `sync` before any other connection sends, and
//! the test waits on server counters before moving on. The oracle then
//! replays exactly that merged stream through an in-process engine with
//! per-message submitter attribution, and the main client's raw reply
//! payload bytes must equal the oracle's re-encoded reactions byte for
//! byte.

use std::time::Duration;

use proptest::prelude::*;

use reweb_core::{InMessage, MessageMeta, ReactiveEngine, ShardedEngine};
use reweb_net::wire::Reply;
use reweb_net::{NetClient, NetConfig, NetServer, RateLimit};
use reweb_persist::{DurableEngine, DurableOptions, SyncPolicy};
use reweb_term::frame::encode_frame;
use reweb_term::{parse_term, Term, Timestamp};

const LABELS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "eps"];

/// Rule fragments: atomic, windowed joins, sequences, guards, DETECT
/// cascades — the operators whose outputs the wire must carry
/// faithfully. (Absence deadlines get their own deterministic test:
/// their firings attribute to whichever arrival advances the clock, so
/// they need a fixed schedule, not a random one.)
fn fragment(i: usize, kind: u8, a: usize, b: usize) -> String {
    let la = LABELS[a % LABELS.len()];
    let lb = LABELS[b % LABELS.len()];
    match kind % 5 {
        0 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} DO SEND saw{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        1 => format!(
            r#"RULE r{i} ON and({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 2m
               DO SEND pair{i}{{a[var X], b[var Y]}} TO "http://sink/{i}" END"#
        ),
        2 => format!(
            r#"RULE r{i} ON seq({la}{{{{v[[var X]]}}}}, {lb}{{{{v[[var Y]]}}}}) within 90s
               DO SEND seq{i}{{a[var X]}} TO "http://sink/{i}" END"#
        ),
        3 => format!(
            r#"RULE r{i} ON {la}{{{{v[[var X]]}}}} where var X >= 5
               DO SEND big{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
        _ => format!(
            r#"DETECT d{i}{{v[var X]}} ON {la}{{{{v[[var X]]}}}} where var X >= 3 END
               RULE r{i} ON d{i}{{{{v[[var X]]}}}} DO SEND derived{i}{{v[var X]}} TO "http://sink/{i}" END"#
        ),
    }
}

fn program(rules: &[(u8, usize, usize)]) -> String {
    rules
        .iter()
        .enumerate()
        .map(|(i, &(kind, a, b))| fragment(i, kind, a, b))
        .collect::<Vec<_>>()
        .join("\n")
}

fn event_payload(label_idx: usize, v: u64) -> Term {
    parse_term(&format!(
        "{}{{v[\"{v}\"]}}",
        LABELS[label_idx % LABELS.len()]
    ))
    .unwrap()
}

/// Poll until `f` holds (servers are asynchronous; the tests are not).
fn wait_until(what: &str, f: impl Fn() -> bool) {
    for _ in 0..4000 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// The in-process oracle: replay the merged stream through a fresh
/// single engine, attributing outputs per message, and return the raw
/// reply payload bytes the main client must receive — reactions for its
/// own messages, re-encoded exactly as the server encodes them.
fn oracle_bytes(
    program_src: &str,
    merged: &[(bool, u64, InMessage)], // (is_main, wire id, message)
) -> Vec<Vec<u8>> {
    let mut oracle = ReactiveEngine::new("http://server/".to_string());
    oracle.install_program(program_src).expect("oracle install");
    let mut expect = Vec::new();
    for (is_main, id, m) in merged {
        let outs = oracle.receive(m.payload.clone(), &m.meta, m.at);
        if *is_main {
            for o in outs {
                let rep = Reply::Reaction {
                    id: *id,
                    to: o.to,
                    payload: o.payload,
                };
                expect.push(rep.to_term().to_string().into_bytes());
            }
        }
    }
    expect
}

fn default_cfg() -> NetConfig {
    NetConfig {
        max_batch: 7, // small, so multi-batch splits actually happen
        batch_latency: Duration::from_millis(1),
        ..NetConfig::default()
    }
}

/// Drive one stream through a server over loopback TCP, in chunks with
/// a sync barrier per chunk, and compare the received reply payloads
/// byte-for-byte with the oracle.
fn run_differential(
    server: &NetServer,
    program_src: &str,
    stream: &[(usize, u64, u64)],
    inject_faults: bool,
) {
    server.with_engine(|e| e.install_source(program_src).expect("install"));
    let addr = server.local_addr();
    let mut a = NetClient::connect(addr, "http://a/").expect("connect a");
    let meta_a = MessageMeta::from_uri("http://a/");
    let meta_b = MessageMeta::from_uri("http://b/");

    let mut merged: Vec<(bool, u64, InMessage)> = Vec::new();
    let mut got: Vec<Vec<u8>> = Vec::new();
    let mut at = 0u64;
    let mut processed = 0u64;
    let stats = || server.stats();

    for (chunk_no, chunk) in stream.chunks(5).enumerate() {
        // Phase 1: the main client sends a chunk and flushes.
        for &(l, v, dt) in chunk {
            at += dt;
            let payload = event_payload(l, v);
            let id = a
                .send_event(payload.clone(), Some(Timestamp(at)))
                .expect("send");
            merged.push((
                true,
                id,
                InMessage::new(payload, meta_a.clone(), Timestamp(at)),
            ));
        }
        got.extend(a.sync_raw().expect("sync"));
        processed += chunk.len() as u64;
        assert_eq!(stats().msgs_processed, processed, "sync is a barrier");

        if !inject_faults {
            continue;
        }
        // Phase 2: a second client sends events that interleave with
        // the main stream at a *known* point (the barrier above), then
        // disconnects without reading its replies — a mid-batch
        // disconnect, whose reactions must be dropped, not misrouted.
        if chunk_no % 2 == 0 {
            let mut b = NetClient::connect(addr, "http://b/").expect("connect b");
            for k in 0..2u64 {
                let payload = event_payload(chunk_no + k as usize, 7);
                let id = b
                    .send_event(payload.clone(), Some(Timestamp(at)))
                    .expect("send b");
                merged.push((
                    false,
                    id,
                    InMessage::new(payload, meta_b.clone(), Timestamp(at)),
                ));
            }
            processed += 2;
            drop(b); // vanish mid-stream, replies unread
            wait_until("disconnector's events processed", || {
                stats().msgs_processed >= processed
            });
        }
        // Phase 3: a third connection speaks garbage — a frame whose
        // CRC does not match. Its connection dies; nothing else may.
        if chunk_no % 2 == 1 {
            let before = stats().framing_errors;
            let mut c = NetClient::connect(addr, "http://c/").expect("connect c");
            let mut bad = encode_frame(b"event{id[\"1\"]}");
            let n = bad.len() - 1;
            bad[n] ^= 0xff; // corrupt the payload against its CRC
            c.send_raw(&bad).expect("send garbage");
            wait_until("framing error counted", || stats().framing_errors > before);
            // The server told it off and closed it.
            match c.recv() {
                Ok(Reply::Error { .. }) => {}
                Ok(other) => panic!("expected an error reply, got {other:?}"),
                Err(_) => {} // close may already have landed
            }
        }
    }

    let expect = oracle_bytes(program_src, &merged);
    let got_s: Vec<String> = got
        .iter()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .collect();
    let expect_s: Vec<String> = expect
        .iter()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .collect();
    assert_eq!(got_s, expect_s, "loopback TCP diverged from in-process");
    assert_eq!(got, expect, "payload bytes diverged beyond UTF-8");
    let _ = a.bye();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random programs, random streams: loopback ≡ in-process.
    #[test]
    fn loopback_tcp_equals_in_process(
        rules in proptest::collection::vec((0..5u8, 0..5usize, 0..5usize), 1..5),
        stream in proptest::collection::vec((0..5usize, 0..10u64, 1..20_000u64), 1..25),
    ) {
        let src = program(&rules);
        let server = NetServer::bind(
            "127.0.0.1:0",
            ReactiveEngine::new("http://server/".to_string()),
            default_cfg(),
        ).expect("bind");
        run_differential(&server, &src, &stream, false);
    }

    /// Same, with malformed frames and mid-batch disconnects injected
    /// between chunks: the main client's byte stream must not change,
    /// and the faults must be visible in the counters.
    #[test]
    fn faults_degrade_per_connection_only(
        rules in proptest::collection::vec((0..5u8, 0..5usize, 0..5usize), 1..4),
        stream in proptest::collection::vec((0..5usize, 0..10u64, 1..20_000u64), 6..20),
    ) {
        let src = program(&rules);
        let server = NetServer::bind(
            "127.0.0.1:0",
            ReactiveEngine::new("http://server/".to_string()),
            default_cfg(),
        ).expect("bind");
        run_differential(&server, &src, &stream, true);
        let s = server.stats();
        prop_assert!(s.framing_errors > 0, "garbage client never counted: {s:?}");
        // After every fault the server still accepts fresh connections.
        let mut d = NetClient::connect(server.local_addr(), "http://d/").expect("connect after faults");
        d.send_event(Term::elem("ping"), Some(Timestamp(u64::MAX / 2))).expect("send after faults");
        d.sync().expect("sync after faults");
    }
}

/// The same transport equivalence holds for every engine shape the
/// ingress tier serves: sharded (parallel workers) and durable (WAL
/// underneath) front-ends produce the single engine's byte stream for a
/// fixed representative workload.
#[test]
fn sharded_and_durable_engines_serve_identically() {
    let rules: Vec<(u8, usize, usize)> = (0..5).map(|i| (i as u8, i, i + 1)).collect();
    let src = program(&rules);
    let stream: Vec<(usize, u64, u64)> = (0..40).map(|i| (i % 5, i as u64 % 11, 500)).collect();

    let single = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        default_cfg(),
    )
    .expect("bind single");
    run_differential(&single, &src, &stream, false);

    let sharded = NetServer::bind(
        "127.0.0.1:0",
        ShardedEngine::new_parallel("http://server/", 4),
        default_cfg(),
    )
    .expect("bind sharded");
    run_differential(&sharded, &src, &stream, false);

    let dir = std::env::temp_dir().join(format!("reweb-net-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let durable = DurableEngine::open(
        &dir,
        DurableOptions {
            sync: SyncPolicy::Os,
            snapshot_every: Some(8),
        },
        || ReactiveEngine::new("http://server/".to_string()),
    )
    .expect("open durable");
    let durable = NetServer::bind("127.0.0.1:0", durable, default_cfg()).expect("bind durable");
    run_differential(&durable, &src, &stream, false);
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Absence deadlines over the wire: reactions fired by an explicit
/// `advance` are routed to the advancing session, under its request id.
#[test]
fn advance_routes_deadline_reactions() {
    let src = r#"RULE r0 ON absence(alpha{{v[[var X]]}}, beta{{v[[var X]]}}, 30s)
                 DO SEND missing{v[var X]} TO "http://sink/0" END"#;
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        default_cfg(),
    )
    .expect("bind");
    server.with_engine(|e| e.install_source(src).expect("install"));
    let mut a = NetClient::connect(server.local_addr(), "http://a/").expect("connect");
    a.send_event(
        parse_term("alpha{v[\"1\"]}").unwrap(),
        Some(Timestamp(1_000)),
    )
    .expect("send");
    assert_eq!(a.sync().expect("sync"), vec![]);
    let advance_id = a.advance(Timestamp(120_000)).expect("advance");
    let replies = a.sync().expect("sync after advance");
    assert_eq!(replies.len(), 1, "one absence firing: {replies:?}");
    match &replies[0] {
        Reply::Reaction { id, to, payload } => {
            assert_eq!(*id, advance_id);
            assert_eq!(to, "http://sink/0");
            assert_eq!(payload.to_string(), "missing{v[\"1\"]}");
        }
        other => panic!("expected a reaction, got {other:?}"),
    }
}

/// Rate-limited sessions see explicit `throttled` replies, and admitted
/// traffic still processes (the oracle sees only admitted events).
#[test]
fn throttled_events_are_rejected_explicitly() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        NetConfig {
            rate_limit: Some(RateLimit {
                events_per_sec: 1,
                burst: 3,
            }),
            ..default_cfg()
        },
    )
    .expect("bind");
    server.with_engine(|e| {
        e.install_source(
            r#"RULE r0 ON alpha{{v[[var X]]}} DO SEND saw{v[var X]} TO "http://sink/0" END"#,
        )
        .expect("install")
    });
    let mut a = NetClient::connect(server.local_addr(), "http://a/").expect("connect");
    for i in 0..10u64 {
        a.send_event(event_payload(0, i), Some(Timestamp(1 + i)))
            .expect("send");
    }
    let replies = a.sync().expect("sync");
    let throttled = replies
        .iter()
        .filter(|r| matches!(r, Reply::Throttled { .. }))
        .count();
    let reactions = replies
        .iter()
        .filter(|r| matches!(r, Reply::Reaction { .. }))
        .count();
    assert_eq!(throttled, 7, "burst of 3 admits 3 of 10: {replies:?}");
    assert_eq!(reactions, 3, "admitted events still react: {replies:?}");
    assert_eq!(server.stats().throttled_replies, 7);
}
