//! The delivery wall: fault-injected end-to-end tests of the outbound
//! delivery agent — retry/backoff, dead-lettering, redelivery, receiver
//! deduplication — plus the differential property that faults never
//! change *what* is accounted for, only *where* it ends up.
//!
//! The headline test is the two-node kill/recover scenario from the
//! at-least-once contract: node A's rules fire reactions addressed to
//! node B while B crashes, restarts, and recovers. Every reaction must
//! end up delivered or dead-lettered (never silently dropped), B's
//! ingested sequence after redelivery must be byte-identical to a
//! fault-free run, and per-destination order must hold throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use proptest::prelude::*;

use reweb_core::ReactiveEngine;
use reweb_net::wire::{ErrorCode, Reply, Request};
use reweb_net::{BackoffPolicy, DeliveryAgent, DeliveryConfig, NetClient, NetConfig, NetServer};
use reweb_persist::{DurableEngine, DurableOptions};
use reweb_term::frame::{crc32, FRAME_HEADER_LEN};
use reweb_term::{parse_term, Term, Timestamp};

/// A fresh scratch directory for one test.
fn tmp(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("reweb-delivery-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Poll until `f` holds (agents and servers are asynchronous; the
/// assertions are not).
fn wait_until(what: &str, f: impl Fn() -> bool) {
    for _ in 0..5000 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// An aggressive test backoff: fail fast, dead-letter fast.
fn fast_cfg(from: &str, dir: &Path, budget: u32) -> DeliveryConfig {
    DeliveryConfig {
        from: from.into(),
        backoff: BackoffPolicy {
            base_ms: 1,
            max_ms: 8,
            jitter_ms: 2,
        },
        retry_budget: budget,
        connect_timeout: Duration::from_millis(300),
        io_timeout: Duration::from_millis(1_000),
        outbox: Some(dir.join("outbox.log")),
        dead_letter: Some(dir.join("dead.log")),
    }
}

/// Bind a receiver node: a plain engine (no rules — it only ingests
/// pushed reactions) with a journaled delivery ledger.
fn bind_receiver(uri: &str, journal: &Path) -> NetServer {
    let cfg = NetConfig {
        delivery_journal: Some(journal.to_path_buf()),
        ..NetConfig::default()
    };
    NetServer::bind("127.0.0.1:0", ReactiveEngine::new(uri.to_string()), cfg).unwrap()
}

/// Bind a receiver whose engine is durable (crash/restart target).
fn bind_durable_receiver(uri: &str, dir: &Path, journal: &Path) -> NetServer {
    let uri_owned = uri.to_string();
    let engine = DurableEngine::open(dir, DurableOptions::default(), move || {
        ReactiveEngine::new(uri_owned)
    })
    .unwrap();
    let cfg = NetConfig {
        delivery_journal: Some(journal.to_path_buf()),
        ..NetConfig::default()
    };
    NetServer::bind("127.0.0.1:0", engine, cfg).unwrap()
}

/// Node A: its rule forwards every `order` as a `ship` reaction
/// addressed into node B's URI space.
fn bind_sender_a(delivery: &reweb_net::DeliveryHandle) -> NetServer {
    let mut engine = ReactiveEngine::new("http://a/".to_string());
    engine
        .install_program(
            r#"RULE fwd ON order{{id[[var O]]}} DO SEND ship{id[var O]} TO "http://b/recv" END"#,
        )
        .unwrap();
    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
    server.attach_delivery(delivery.clone());
    server
}

fn order(i: usize) -> Term {
    parse_term(&format!("order{{id[\"o{i}\"]}}")).unwrap()
}

/// Drive `n` orders into node A over TCP, fenced so A's processing
/// order is deterministic.
fn post_orders(client: &mut NetClient, range: std::ops::Range<usize>) {
    for i in range {
        client
            .send_event(order(i), Some(Timestamp(i as u64 * 10)))
            .unwrap();
        client.sync().unwrap();
    }
}

/// The fault-free reference: same rules, same orders, nothing killed.
/// Returns B's ingested `(key, payload)` sequence.
fn fault_free_reference(n: usize) -> Vec<(String, String)> {
    let dir = tmp("reference");
    let b = bind_receiver("http://b/", &dir.join("ledger.log"));
    let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 2)).unwrap();
    agent.add_route("http://b/", b.local_addr());
    let a = bind_sender_a(&agent.handle());
    let mut client = NetClient::connect(a.local_addr(), "http://client/").unwrap();
    post_orders(&mut client, 0..n);
    assert!(agent.flush(Duration::from_secs(10)), "reference flush");
    wait_until("reference deliveries", || b.delivered().len() == n);
    let out = b
        .delivered()
        .into_iter()
        .map(|(k, p)| (k, p.to_string()))
        .collect();
    agent.shutdown();
    drop(a);
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// The acceptance scenario: A pushes to B; B crashes mid-stream and
/// stays down past the retry budget (every undeliverable reaction must
/// land in the dead-letter log, exactly accounting for the remainder);
/// B restarts from its journals; `redeliver` brings B's ingested
/// sequence to byte-equality with the fault-free run.
#[test]
fn two_node_kill_recover_delivers_at_least_once_in_order() {
    let dir = tmp("killrecover");
    let b_wal = dir.join("b-wal");
    let b_ledger = dir.join("b-ledger.log");

    let b = bind_durable_receiver("http://b/", &b_wal, &b_ledger);
    let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 2)).unwrap();
    agent.add_route("http://b/", b.local_addr());
    let a = bind_sender_a(&agent.handle());
    let mut client = NetClient::connect(a.local_addr(), "http://client/").unwrap();

    // Phase 1: B is up; five orders flow end to end.
    post_orders(&mut client, 0..5);
    assert!(agent.flush(Duration::from_secs(10)), "phase-1 flush");
    wait_until("phase-1 deliveries", || b.delivered().len() == 5);

    // Phase 2: B crashes. Five more orders fire; the agent retries past
    // its budget and must dead-letter all five — no silent drops.
    let mut b_down = b;
    b_down.shutdown();
    drop(b_down);
    post_orders(&mut client, 5..10);
    assert!(agent.flush(Duration::from_secs(20)), "phase-2 flush");
    let dead = agent.dead_letters();
    assert_eq!(dead.len(), 5, "undeliverable remainder: {dead:?}");
    // Each dead letter spent its whole budget, and they kept queue order.
    assert!(dead.iter().all(|d| d.attempts >= 2));
    let dead_seqs: Vec<u64> = dead.iter().map(|d| d.seq).collect();
    assert_eq!(dead_seqs, vec![5, 6, 7, 8, 9]);
    let stats = agent.stats();
    assert_eq!(stats.delivered, 5);
    assert_eq!(stats.dead_lettered, 5);
    assert!(stats.failed_attempts >= 10, "stats {stats:?}");

    // Phase 3: B restarts from its write-ahead log and delivery ledger
    // (a different port — recovery must not depend on the address).
    let b2 = bind_durable_receiver("http://b/", &b_wal, &b_ledger);
    assert_eq!(b2.delivered().len(), 5, "ledger survived the crash");
    agent.add_route("http://b/", b2.local_addr());
    assert_eq!(agent.redeliver().unwrap(), 5);
    assert!(agent.flush(Duration::from_secs(10)), "redelivery flush");
    wait_until("redeliveries", || b2.delivered().len() == 10);

    // At-least-once, exactly-once ingested, order preserved: B's final
    // sequence is byte-identical to the fault-free run's.
    let got: Vec<(String, String)> = b2
        .delivered()
        .into_iter()
        .map(|(k, p)| (k, p.to_string()))
        .collect();
    assert_eq!(got, fault_free_reference(10));
    assert!(agent.dead_letters().is_empty());
    let stats = agent.stats();
    assert_eq!(stats.redelivered, 5);
    assert_eq!(stats.delivered, 10);

    agent.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sender-side durability: an agent that dies with unsettled deliveries
/// re-queues them from its outbox journal on restart and completes them.
#[test]
fn outbox_recovers_unsettled_deliveries_across_agent_restart() {
    let dir = tmp("outbox-restart");
    // Route to a port nobody listens on: enqueue succeeds, delivery
    // cannot — then kill the agent with everything still pending.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    {
        let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 100)).unwrap();
        agent.add_route("http://b/", dead_addr);
        for i in 0..3 {
            assert!(agent.enqueue(
                "http://b/recv",
                Timestamp(i),
                &parse_term(&format!("ev{i}")).unwrap()
            ));
        }
        agent.shutdown(); // deliveries still pending: journal keeps them
    }
    let b = bind_receiver("http://b/", &dir.join("ledger.log"));
    let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 100)).unwrap();
    assert_eq!(agent.pending(), 3, "outbox re-queued the unsettled set");
    agent.add_route("http://b/", b.local_addr());
    agent.pump();
    assert!(agent.flush(Duration::from_secs(10)));
    wait_until("recovered deliveries", || b.delivered().len() == 3);
    let keys: Vec<String> = b.delivered().into_iter().map(|(k, _)| k).collect();
    assert_eq!(keys, vec!["http://a/#0", "http://a/#1", "http://a/#2"]);
    agent.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The classic duplicate-generating fault: the connection drops after
/// the push but before the ack. The retry must be absorbed by the
/// receiver's key ledger — ingested exactly once, acked as duplicate.
#[test]
fn drop_before_ack_retry_is_deduplicated_by_the_receiver() {
    let dir = tmp("dropack");
    let b = bind_receiver("http://b/", &dir.join("ledger.log"));
    let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 10)).unwrap();
    agent.add_route("http://b/", b.local_addr());
    agent.inject_drop_before_ack("http://b/", 1);
    for i in 0..2 {
        assert!(agent.enqueue(
            "http://b/recv",
            Timestamp(i),
            &parse_term(&format!("ev{i}")).unwrap()
        ));
    }
    assert!(agent.flush(Duration::from_secs(10)));
    wait_until("both deliveries", || b.delivered().len() == 2);
    // The dropped push *was* ingested; only its ack was lost.
    assert_eq!(b.delivered().len(), 2, "ingested exactly once each");
    let stats = agent.stats();
    assert_eq!(stats.delivered, 2);
    assert_eq!(stats.duplicate_acks, 1, "stats {stats:?}");
    assert_eq!(b.stats().deliveries_duplicate, 1);
    agent.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A peer that is alive but slow exercises the io timeout path without
/// losing anything: deliveries retry until the latency clears the bar.
#[test]
fn slow_peer_delays_but_loses_nothing() {
    let dir = tmp("slowpeer");
    let b = bind_receiver("http://b/", &dir.join("ledger.log"));
    let mut agent = DeliveryAgent::new(fast_cfg("http://a/", &dir, 10)).unwrap();
    agent.add_route("http://b/", b.local_addr());
    agent.inject_slow_peer("http://b/", Duration::from_millis(20));
    for i in 0..3 {
        assert!(agent.enqueue(
            "http://b/recv",
            Timestamp(i),
            &parse_term(&format!("ev{i}")).unwrap()
        ));
    }
    assert!(agent.flush(Duration::from_secs(10)));
    wait_until("slow deliveries", || b.delivered().len() == 3);
    assert!(agent.dead_letters().is_empty());
    agent.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the connection cap refuses at accept with a well-formed
/// `error{code["busy"]}` carrying a `retry_ms` hint from the shared
/// backoff policy — not a bare RST.
#[test]
fn connection_cap_refuses_with_busy_and_retry_hint() {
    let cfg = NetConfig {
        max_connections: Some(1),
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://s/".to_string()),
        cfg,
    )
    .unwrap();
    let _first = NetClient::connect(server.local_addr(), "http://one/").unwrap();
    wait_until("first connection open", || {
        server.stats().connections_open == 1
    });

    // Second connection: refused before the hello is even read.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut header = [0u8; FRAME_HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    raw.read_exact(&mut payload).unwrap();
    assert_eq!(crc32(&payload), crc, "refusal is a well-formed frame");
    match Reply::decode(&payload).unwrap() {
        Reply::Error { code, retry_ms, .. } => {
            assert_eq!(code, ErrorCode::Busy);
            assert_eq!(retry_ms, Some(BackoffPolicy::BUSY.delay_ms(0)));
        }
        other => panic!("expected busy error, got {other:?}"),
    }
    // The refused socket is closed server-side; further writes go
    // nowhere and the cap still admits nobody new while one is open.
    let _ = raw.write_all(
        &Request::Hello {
            from: "http://two/".into(),
            credentials: None,
            gateway: false,
        }
        .encode(),
    );
    wait_until("refusal counted", || {
        server.stats().connections_refused >= 1
    });
}

// ---------------------------------------------------------------------------
// Differential property: faults move outcomes between "delivered" and
// "dead-lettered" but never lose, reorder, or duplicate an ingestion.
// ---------------------------------------------------------------------------

/// Run one reaction stream through an agent against receivers B (live)
/// and C (killed under faults). Returns, per destination, the settled
/// payloads sorted by delivery seq (delivered ∪ dead-lettered).
fn run_stream(stream: &[(usize, u8)], faults: Option<(u32, u32, u64)>) -> Vec<Vec<String>> {
    static RUN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let run = RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let ledger = |node: &str| {
        std::env::temp_dir().join(format!(
            "reweb-delivery-prop-{node}-{}-{run}.log",
            std::process::id()
        ))
    };
    let (ledger_b, ledger_c) = (ledger("b"), ledger("c"));
    let _ = std::fs::remove_file(&ledger_b);
    let _ = std::fs::remove_file(&ledger_c);
    let b = bind_receiver("http://b/", &ledger_b);
    let mut c = bind_receiver("http://c/", &ledger_c);
    let mut agent = DeliveryAgent::new(DeliveryConfig {
        from: "http://a/".into(),
        backoff: BackoffPolicy {
            base_ms: 1,
            max_ms: 4,
            jitter_ms: 2,
        },
        retry_budget: 3,
        connect_timeout: Duration::from_millis(300),
        io_timeout: Duration::from_millis(1_000),
        outbox: None,
        dead_letter: None,
    })
    .unwrap();
    agent.add_route("http://b/", b.local_addr());
    agent.add_route("http://c/", c.local_addr());
    if let Some((connect_fails, ack_drops, slow_ms)) = faults {
        c.shutdown(); // the kill: C is down for the whole run
        agent.inject_connect_failures("http://b/", connect_fails);
        agent.inject_drop_before_ack("http://b/", ack_drops);
        if slow_ms > 0 {
            agent.inject_slow_peer("http://b/", Duration::from_millis(slow_ms));
        }
    }
    for (i, (dest, v)) in stream.iter().enumerate() {
        let to = if *dest == 0 {
            "http://b/recv"
        } else {
            "http://c/recv"
        };
        let payload = parse_term(&format!("ev{i}{{v[\"{v}\"]}}")).unwrap();
        assert!(agent.enqueue(to, Timestamp(i as u64), &payload));
    }
    assert!(agent.flush(Duration::from_secs(60)), "stream flush");

    // Collect every settled delivery as (seq, dest, payload).
    let mut settled: Vec<(u64, usize, String)> = Vec::new();
    let mut collect_ledger = |server: &NetServer, dest: usize| {
        let mut last_seq = None;
        for (key, payload) in server.delivered() {
            let seq: u64 = key.rsplit('#').next().unwrap().parse().unwrap();
            // Per-destination ingestion order follows delivery seqs.
            assert!(last_seq < Some(seq), "out of order at {key}");
            last_seq = Some(seq);
            settled.push((seq, dest, payload.to_string()));
        }
    };
    collect_ledger(&b, 0);
    collect_ledger(&c, 1);
    for d in agent.dead_letters() {
        let dest = usize::from(!d.to.starts_with("http://b/"));
        settled.push((d.seq, dest, d.payload.to_string()));
    }
    agent.shutdown();
    let _ = std::fs::remove_file(&ledger_b);
    let _ = std::fs::remove_file(&ledger_c);
    settled.sort();
    // A delivery whose ack was lost can be *both* ingested and (after
    // the budget ran out) dead-lettered — the sender cannot know. The
    // union is therefore keyed by delivery seq, exactly as the
    // receiver's ledger would absorb a redelivery. A seq surviving with
    // two different payloads would not collapse here and fails the
    // comparison — that would be a real corruption.
    settled.dedup();
    let mut per_dest = vec![Vec::new(), Vec::new()];
    for (_, dest, payload) in settled {
        per_dest[dest].push(payload);
    }
    per_dest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite: the same reaction stream with and without injected
    /// faults (a killed receiver, refused connects, dropped acks, slow
    /// peers) settles identically — the union of delivered and
    /// dead-lettered payloads matches the fault-free delivery sequence
    /// per destination, with order preserved and nothing duplicated.
    #[test]
    fn faults_never_lose_reorder_or_duplicate(
        stream in proptest::collection::vec((0..2usize, 0..50u8), 1..10),
        connect_fails in 0..5u32,
        ack_drops in 0..3u32,
        slow_ms in 0..3u64,
    ) {
        let reference = run_stream(&stream, None);
        let faulted = run_stream(&stream, Some((connect_fails, ack_drops, slow_ms)));
        prop_assert_eq!(faulted, reference);
    }
}
