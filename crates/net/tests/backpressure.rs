//! Deterministic fault and backpressure tests: every degradation mode
//! the wire protocol documents — `busy`, `throttled` (covered in
//! `net_equivalence.rs`), oversized frames, slow readers, missing or
//! malformed handshakes, non-gateway overrides — must be observable as
//! an explicit reply or counter, and must degrade *that connection
//! only* while the engine and every other client keep working.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use reweb_core::ReactiveEngine;
use reweb_net::wire::{ErrorCode, Reply, Request};
use reweb_net::{NetClient, NetConfig, NetServer};
use reweb_term::frame::{crc32, FRAME_HEADER_LEN};
use reweb_term::parse_term;

/// One rule that echoes every `ping` so each admitted event produces
/// exactly one reaction — admitted vs. rejected is countable.
const ECHO: &str = r#"RULE r0 ON ping{v[[var X]]} DO SEND pong{v[var X]} TO "http://sink/0" END"#;

fn ping(v: &str) -> reweb_term::Term {
    parse_term(&format!("ping{{v[\"{v}\"]}}")).expect("ping payload")
}

fn wait_until(what: &str, f: impl Fn() -> bool) {
    for _ in 0..4000 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// Read one reply frame from a raw socket (for tests that bypass
/// [`NetClient`] to violate the handshake).
fn recv_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    assert_eq!(crc32(&payload), crc, "reply frame CRC");
    Ok(payload)
}

/// A full ingress queue answers `busy` — a bounded, explicit rejection,
/// never silent loss and never an unbounded buffer. Stall the driver by
/// holding the engine lock, overflow the queue, then release and check
/// that exactly the admitted events produced reactions.
#[test]
fn queue_full_yields_busy_replies() {
    let cfg = NetConfig {
        max_batch: 1,
        queue_capacity: 2,
        batch_latency: Duration::from_millis(1),
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        cfg,
    )
    .expect("bind");
    server.with_engine(|e| e.install_source(ECHO).expect("install"));

    // Connect BEFORE stalling the driver: the handshake reads the
    // engine descriptor under the same lock.
    let mut c = NetClient::connect(server.local_addr(), "http://c/").expect("connect");

    let hold = AtomicBool::new(true);
    let held = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            server.with_engine(|_| {
                held.store(true, Ordering::SeqCst);
                while hold.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        wait_until("engine lock held", || held.load(Ordering::SeqCst));

        // The driver can pop at most one batch (max_batch = 1) before
        // blocking on the engine lock, and the queue holds two more:
        // of 8 events, at most 3 are admitted.
        for v in 0..8u32 {
            c.send_event(
                ping(&v.to_string()),
                Some(reweb_term::Timestamp(1_000 + v as u64)),
            )
            .expect("send");
        }
        wait_until("all 8 events admitted or rejected", || {
            let st = server.stats();
            st.msgs_enqueued + st.busy_replies == 8
        });
        hold.store(false, Ordering::SeqCst);
    });

    let replies = c.sync().expect("sync");
    let busy = replies
        .iter()
        .filter(|r| {
            if let Reply::Busy {
                depth, capacity, ..
            } = r
            {
                assert_eq!(*capacity, 2, "busy reply reports the configured bound");
                assert!(*depth >= *capacity, "busy reply reports a full queue");
                true
            } else {
                false
            }
        })
        .count();
    let reactions = replies
        .iter()
        .filter(|r| matches!(r, Reply::Reaction { .. }))
        .count();
    assert_eq!(
        busy + reactions,
        8,
        "every event answered: busy or reaction"
    );
    assert!(
        (5..=6).contains(&busy),
        "8 events against capacity 2 + one in-flight batch: got {busy} busy"
    );
    let st = server.stats();
    assert_eq!(st.busy_replies, busy as u64);
    assert_eq!(st.msgs_processed, reactions as u64);

    // Backpressure is transient: the same connection is fully served
    // once the queue drains.
    c.send_event(ping("after"), Some(reweb_term::Timestamp(2_000)))
        .expect("send");
    let after = c.sync().expect("sync after");
    assert_eq!(after.len(), 1);
    assert!(matches!(after[0], Reply::Reaction { .. }));
}

/// An oversized frame is rejected from its header alone — before the
/// body is read or buffered — with an explicit error, and closes only
/// the offending connection.
#[test]
fn oversized_frame_closes_offender_only() {
    let cfg = NetConfig {
        max_body: 256,
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        cfg,
    )
    .expect("bind");
    server.with_engine(|e| e.install_source(ECHO).expect("install"));
    let addr = server.local_addr();

    let mut a = NetClient::connect(addr, "http://a/").expect("connect a");
    let mut b = NetClient::connect(addr, "http://b/").expect("connect b");

    b.send_event(ping(&"x".repeat(1024)), Some(reweb_term::Timestamp(1_000)))
        .expect("send oversized");
    match b.recv().expect("error reply before close") {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::OversizedFrame),
        other => panic!("expected oversized-frame error, got {other:?}"),
    }
    assert!(b.recv().is_err(), "offending connection is closed");
    wait_until("framing error counted", || {
        server.stats().framing_errors == 1
    });

    // The other connection never notices.
    a.send_event(ping("ok"), Some(reweb_term::Timestamp(1_001)))
        .expect("send a");
    let replies = a.sync().expect("sync a");
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Reaction { .. }));
    assert_eq!(server.stats().msgs_processed, 1);
}

/// A reader that never drains its replies gets them dropped (counted,
/// bounded buffering) — the driver never blocks on a slow connection,
/// and other clients stay fully served.
#[test]
fn slow_reader_drops_replies_not_the_engine() {
    let cfg = NetConfig {
        reply_buffer: 1,
        ..NetConfig::default()
    };
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        cfg,
    )
    .expect("bind");
    server.with_engine(|e| e.install_source(ECHO).expect("install"));
    let addr = server.local_addr();

    // Big echoes fill the OS socket buffers quickly; once the writer
    // blocks and its one-slot buffer is full, further replies drop.
    let mut slow = NetClient::connect(addr, "http://slow/").expect("connect slow");
    let big = "x".repeat(32 * 1024);
    let mut sent = 0u64;
    for _ in 0..3000 {
        slow.send_event(ping(&big), Some(reweb_term::Timestamp(1_000)))
            .expect("send");
        sent += 1;
        if server.stats().replies_dropped > 0 {
            break;
        }
    }
    let st = server.stats();
    assert!(
        st.replies_dropped > 0,
        "no drops after {sent} undrained 32KiB echoes"
    );
    // The engine processed everything that was admitted — drops happen
    // at the reply boundary, not inside the batch.
    wait_until("all admitted events processed", || {
        let st = server.stats();
        st.msgs_processed == st.msgs_enqueued && st.msgs_enqueued == sent
    });

    // A well-behaved client on the same server is unaffected.
    let mut ok = NetClient::connect(addr, "http://ok/").expect("connect ok");
    ok.send_event(ping("ok"), Some(reweb_term::Timestamp(1_001)))
        .expect("send ok");
    let replies = ok.sync().expect("sync ok");
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Reaction { .. }));
}

/// Per-event `from`/`cred` overrides are a gateway privilege: ordinary
/// sessions get `not-gateway` for that event and keep their session.
#[test]
fn sender_override_requires_gateway() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        NetConfig::default(),
    )
    .expect("bind");
    server.with_engine(|e| e.install_source(ECHO).expect("install"));
    let addr = server.local_addr();

    let mut plain = NetClient::connect(addr, "http://plain/").expect("connect");
    let id = plain
        .send_event_as(
            "http://spoofed/",
            None,
            ping("1"),
            Some(reweb_term::Timestamp(1_000)),
        )
        .expect("send");
    let replies = plain.sync().expect("sync");
    assert_eq!(replies.len(), 1);
    match &replies[0] {
        Reply::Error { code, id: got, .. } => {
            assert_eq!(*code, ErrorCode::NotGateway);
            assert_eq!(*got, Some(id), "error names the offending event");
        }
        other => panic!("expected not-gateway error, got {other:?}"),
    }
    // The session survives the rejection.
    plain
        .send_event(ping("2"), Some(reweb_term::Timestamp(1_001)))
        .expect("send");
    let replies = plain.sync().expect("sync");
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Reaction { .. }));

    // A gateway session may override per event.
    let mut gw = NetClient::connect_with(addr, "http://gw/", None, true).expect("connect gw");
    gw.send_event_as(
        "http://origin/",
        None,
        ping("3"),
        Some(reweb_term::Timestamp(1_002)),
    )
    .expect("send as");
    let replies = gw.sync().expect("sync gw");
    assert_eq!(replies.len(), 1);
    assert!(matches!(replies[0], Reply::Reaction { .. }));
    assert_eq!(server.stats().envelope_errors, 1);
}

/// The first envelope must be `hello`: anything else is answered with
/// `no-hello` and the connection is closed.
#[test]
fn first_envelope_must_be_hello() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        NetConfig::default(),
    )
    .expect("bind");

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let req = Request::Event {
        id: 1,
        at: Some(reweb_term::Timestamp(1_000)),
        from: None,
        credentials: None,
        payload: ping("1"),
    };
    raw.write_all(&req.encode()).expect("write");
    let payload = recv_frame(&mut raw).expect("reply");
    match Reply::decode(&payload).expect("decode") {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::NoHello),
        other => panic!("expected no-hello error, got {other:?}"),
    }
    let mut rest = Vec::new();
    assert_eq!(
        raw.read_to_end(&mut rest).expect("eof"),
        0,
        "connection closed after no-hello"
    );
}

/// A `hello` naming an unknown schema is refused with `bad-schema`.
#[test]
fn unknown_schema_is_refused() {
    let server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://server/".to_string()),
        NetConfig::default(),
    )
    .expect("bind");

    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    let hello = parse_term(r#"hello{schema["reweb-net/999"], from["http://x/"]}"#).unwrap();
    raw.write_all(&reweb_term::frame::encode_frame(
        hello.to_string().as_bytes(),
    ))
    .expect("write");
    let payload = recv_frame(&mut raw).expect("reply");
    match Reply::decode(&payload).expect("decode") {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::BadSchema),
        other => panic!("expected bad-schema error, got {other:?}"),
    }
}
