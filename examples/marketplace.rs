//! An online marketplace — the paper's opening motivation ("online
//! marketplaces that receive and process orders"), run over the simulated
//! Web with three nodes: a shop, a warehouse, and a customer.
//!
//! ```text
//! cargo run --example marketplace
//! ```
//!
//! Shows composite events (order ∧ payment within a window), conditions
//! joining persistent data, procedures shared between rules (Thesis 9),
//! transactional compound actions (Thesis 8), and choreography across
//! nodes without any central coordinator (Thesis 2).

use reweb::core::ReactiveEngine;
use reweb::term::{parse_term, Dur, Timestamp};
use reweb::websim::Simulation;

fn shop_engine() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://shop");
    e.qe.store.put(
        "http://shop/customers",
        parse_term(
            r#"customers[
                 customer{id["franz"], address["Oettingenstr. 67, Munich"]},
                 customer{id["ann"],   address["Main St 1, Springfield"]} ]"#,
        )
        .unwrap(),
    );
    e.qe.store.put(
        "http://shop/stock",
        parse_term(r#"stock[ item{sku["ball"], qty["120"]}, item{sku["net"], qty["3"]} ]"#)
            .unwrap(),
    );
    e.install_program(
        r#"
        RULESET shop
          # One shipping procedure shared by every payment path (Thesis 9).
          PROCEDURE ship(Order, Sku, Addr) DO
            SEQ
              PERSIST shipment{order[var Order], sku[var Sku], to[var Addr]} IN "http://shop/shipments";
              SEND dispatch{order[var Order], sku[var Sku], to[var Addr]} TO "http://warehouse";
            END
          END

          RULESET orders
            # The composite business event: order and matching payment
            # within 2 hours, payment covering the total.
            RULE on_paid_order
              ON and( order{{id[[var O]], customer[[var C]], sku[[var K]], total[[var T]]}},
                      payment{{order[[var O]], amount[[var A]]}} ) within 2h
                 where var A >= var T
              IF in "http://shop/customers" customer{{id[[var C]], address[[var Addr]]}}
              THEN CALL ship(var O, var K, var Addr)
              ELSE SEND problem{order[var O], reason["unknown customer"]} TO "http://customer"
            END

            # Unpaid orders: if no payment follows within 2 hours, remind.
            RULE payment_overdue
              ON absence( order{{id[[var O]], customer[[var C]]}},
                          payment{{order[[var O]]}}, 2h )
              DO SEND reminder{order[var O]} TO "http://customer"
            END
          END
        END
        "#,
    )
    .expect("shop program parses");
    e
}

fn warehouse_engine() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://warehouse");
    e.qe.store
        .put("http://warehouse/ledger", parse_term("ledger[]").unwrap());
    e.install_program(
        r#"
        RULE on_dispatch
          ON dispatch{{order[[var O]], sku[[var K]], to[[var Addr]]}}
          DO SEQ
               PERSIST picked{order[var O], sku[var K]} IN "http://warehouse/ledger";
               SEND shipped{order[var O], eta["2 days"]} TO "http://customer";
             END
        END
        "#,
    )
    .expect("warehouse program parses");
    e
}

fn main() {
    let mut sim = Simulation::new(2026);
    sim.set_latency(Dur::millis(25), 10);
    sim.add_engine("http://shop", shop_engine());
    sim.add_engine("http://warehouse", warehouse_engine());
    sim.add_sink("http://customer");

    // Franz orders ten soccer balls, pays 20 minutes later.
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o1"], customer["franz"], sku["ball"], total["199"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"payment{order["o1"], amount["199"]}"#).unwrap(),
        Timestamp(20 * 60_000),
    );
    // Ann orders but never pays.
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o2"], customer["ann"], sku["net"], total["49"]}"#).unwrap(),
        Timestamp(10 * 60_000),
    );

    sim.run_until(Timestamp(4 * 3_600_000));

    println!("customer's inbox:");
    for (at, env) in sim.sink("http://customer") {
        println!("  [{at}] from {}: {}", env.from, env.body);
    }

    let shop = sim.engine("http://shop").unwrap();
    let shipments = shop.qe.store.get("http://shop/shipments").unwrap();
    println!("\nshop shipments: {shipments}");
    let wh = sim.engine("http://warehouse").unwrap();
    println!(
        "warehouse ledger: {}",
        wh.qe.store.get("http://warehouse/ledger").unwrap()
    );
    println!(
        "\nnetwork: {} messages, {} bytes",
        sim.metrics.messages, sim.metrics.bytes
    );

    // Sanity: Franz got shipped + dispatched flows, Ann got a reminder.
    let inbox = sim.sink("http://customer");
    assert!(inbox.iter().any(|(_, e)| e.body.label() == Some("shipped")));
    assert!(inbox
        .iter()
        .any(|(_, e)| e.body.label() == Some("reminder")));
}
