//! The paper's composite-event example (Thesis 5):
//!
//! > "the cancellation of a flight (atomic event) might not by itself
//! > require a reaction by a passenger. However, if a flight has been
//! > canceled, and there is no notification within the next two hours
//! > that the passenger is put onto another flight, this might well
//! > require a reaction."
//!
//! ```text
//! cargo run --example travel_monitor
//! ```
//!
//! Two flights are cancelled; one passenger is rebooked in time, the other
//! is not — only the second triggers the alarm, exactly at the deadline.

use reweb::core::ReactiveEngine;
use reweb::term::{parse_term, Dur, Timestamp};
use reweb::websim::Simulation;

fn main() {
    let mut engine = ReactiveEngine::new("http://assistant");
    engine
        .install_program(
            r#"
            RULESET travel
              # The deadline-driven negation: cancelled AND NOT rebooked
              # within 2 hours (an event query no single atomic event can
              # express).
              RULE stranded
                ON absence( flight{{no[[var N]], status[["cancelled"]], pax[[var P]]}},
                            rebooked{{no[[var N]], pax[[var P]]}}, 2h )
                DO SEQ
                     PERSIST incident{flight[var N], passenger[var P]} IN "http://assistant/incidents";
                     SEND alarm{flight[var N], passenger[var P],
                                advice["no rebooking within 2h - call the airline"]}
                       TO "http://phone";
                   END
              END

              # Plain atomic reaction for comparison: log every cancellation.
              RULE log_cancellation
                ON flight{{no[[var N]], status[["cancelled"]]}}
                DO LOG cancelled[var N]
              END
            END
            "#,
        )
        .expect("travel program parses");

    let mut sim = Simulation::new(11);
    sim.set_latency(Dur::millis(30), 15);
    sim.add_engine("http://assistant", engine);
    sim.add_sink("http://phone");

    let h = 3_600_000u64; // one hour in virtual ms

    // Two cancellations from the airline.
    sim.post(
        "http://airline",
        "http://assistant",
        parse_term(r#"flight{no["LH123"], status["cancelled"], pax["franz"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://airline",
        "http://assistant",
        parse_term(r#"flight{no["LH456"], status["cancelled"], pax["michael"]}"#).unwrap(),
        Timestamp(h / 2),
    );
    // Franz is rebooked 45 minutes after his cancellation — in time.
    sim.post(
        "http://airline",
        "http://assistant",
        parse_term(r#"rebooked{no["LH123"], pax["franz"]}"#).unwrap(),
        Timestamp(45 * 60_000),
    );
    // Michael never is.

    sim.run_until(Timestamp(5 * h));

    println!("phone notifications:");
    for (at, env) in sim.sink("http://phone") {
        println!("  [{at}] {}", env.body);
    }

    let assistant = sim.engine("http://assistant").unwrap();
    println!(
        "\nincidents resource: {}",
        assistant
            .qe
            .store
            .get("http://assistant/incidents")
            .unwrap()
    );
    println!(
        "action log: {:?}",
        assistant
            .action_log
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
    );

    // Exactly one alarm — Michael's — fired at his 2h deadline.
    let phone = sim.sink("http://phone");
    assert_eq!(phone.len(), 1);
    assert!(phone[0].1.body.to_string().contains("LH456"));
    let deadline = Timestamp(h / 2 + 2 * h);
    assert!(phone[0].0 >= deadline && phone[0].0 <= deadline + Dur::secs(1));
    println!("\nalarm fired at {} (deadline was {deadline})", phone[0].0);
}
