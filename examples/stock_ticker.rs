//! Event accumulation (Thesis 5): the paper's two examples —
//!
//! > "a stock market application might require notification if 'the
//! > average over the last 5 reported stock prices raises by 5%', or a
//! > service level agreement might require a reaction when '3 server
//! > outages have been reported within 1 hour'."
//!
//! ```text
//! cargo run --example stock_ticker
//! ```

use reweb::core::ReactiveEngine;
use reweb::term::{parse_term, Timestamp};

fn main() {
    // ----- 1. the 5%-rise detector --------------------------------------
    //
    // Layered exactly as Thesis 9 suggests: a DETECT rule *derives* a
    // higher-level `avgprice` event from the sliding 5-price average
    // (accumulation, per symbol), and the reaction rule composes two of
    // those derived events in sequence with an arithmetic WHERE.
    let mut market = ReactiveEngine::new("http://market");
    market
        .install_program(
            r#"
            DETECT avgprice{sym[var S], a[var A]}
              ON avg(var P, 5, stock{{sym[[var S]], price[[var P]]}}) as var A group by var S
            END

            RULE rise_alert
              ON seq( avgprice{{sym[[var S]], a[[var A1]]}},
                      avgprice{{sym[[var S]], a[[var A2]]}} ) within 1h
                 where var A2 >= var A1 * 1.05
              DO SEND alert{sym[var S], from[var A1], to[var A2]} TO "http://trader"
            END
            "#,
        )
        .expect("market program parses");

    let prices = [
        ("ACME", 100.0),
        ("ACME", 101.0),
        ("ACME", 99.0),
        ("ACME", 100.0),
        ("ACME", 100.0), // avg of last 5 = 100.0
        ("ACME", 130.0), // avg jumps to 106.0 — a 6% rise over 100.0
        ("GLOB", 50.0),  // a different symbol keeps its own buffer
    ];
    let meta = reweb::core::MessageMeta::from_uri("http://exchange");
    let mut alerts = 0;
    for (i, (sym, price)) in prices.iter().enumerate() {
        let out = market.receive(
            parse_term(&format!("stock{{sym[\"{sym}\"], price[\"{price}\"]}}")).unwrap(),
            &meta,
            Timestamp(i as u64 * 60_000),
        );
        for m in out {
            alerts += 1;
            println!("ALERT -> {}: {}", m.to, m.payload);
        }
    }
    assert_eq!(alerts, 1, "exactly the 130 tick triggers the rise alert");

    // ----- 2. the SLA rule, in the rule language on an engine -------------
    let mut ops = ReactiveEngine::new("http://ops");
    ops.install_program(
        r#"
        RULE sla_breach
          ON count(3, outage{{service[["db"]]}}, 1h)
          DO SEQ
               PERSIST breach{service["db"]} IN "http://ops/breaches";
               LOG sla_violated[service["db"]];
             END
        END
        "#,
    )
    .expect("SLA program parses");

    let meta = reweb::core::MessageMeta::from_uri("http://monitor");
    // Two outages 50 minutes apart, then a third within the hour.
    for (i, min) in [0u64, 30, 55].iter().enumerate() {
        ops.receive(
            parse_term(r#"outage{service["db"], reason["timeout"]}"#).unwrap(),
            &meta,
            Timestamp(min * 60_000 + i as u64),
        );
    }
    let breaches = ops.qe.store.get("http://ops/breaches").unwrap();
    println!("SLA breaches: {breaches}");
    assert_eq!(breaches.children().len(), 1);

    // A fourth outage three hours later does NOT re-trigger (window).
    ops.receive(
        parse_term(r#"outage{service["db"], reason["disk"]}"#).unwrap(),
        &meta,
        Timestamp(4 * 3_600_000),
    );
    assert_eq!(
        ops.qe
            .store
            .get("http://ops/breaches")
            .unwrap()
            .children()
            .len(),
        1
    );
    println!("late outage correctly ignored (outside the 1h window)");
}
