//! The paper's Thesis 11 walkthrough: policy-based trust negotiation
//! between customer Franz and the online shop fussbaelle.biz, with rules
//! (policies) exchanged *reactively* as data.
//!
//! ```text
//! cargo run --example trust_negotiation
//! ```
//!
//! Also demonstrates the engine-level half of Thesis 11: a rule set
//! travelling inside an `install_rules` message and being evaluated by the
//! receiving engine (meta-circularity), gated by AAA (Thesis 12).

use reweb::core::{
    meta::install_rules_payload, negotiate, parse_program, AaaConfig, MessageMeta, Permission,
    ReactiveEngine, Strategy,
};
use reweb::term::{parse_term, Timestamp};

fn main() {
    // ----- 1. the fussbaelle.biz negotiation ------------------------------
    let (franz, shop) = reweb::core::trust::fussbaelle_scenario();

    println!("== reactive negotiation (the paper's five steps) ==");
    let out = negotiate(&franz, &shop, "purchase", Strategy::Reactive);
    for line in &out.trace {
        println!("  {line}");
    }
    println!(
        "success={} messages={} policies_disclosed={} sensitive_leaked={} bytes={}",
        out.success, out.messages, out.policies_disclosed, out.sensitive_leaked, out.bytes
    );
    assert!(out.success);

    println!("\n== eager strategy (everything up front) ==");
    let eager = negotiate(&franz, &shop, "purchase", Strategy::Eager);
    println!(
        "success={} messages={} policies_disclosed={} sensitive_leaked={} bytes={}",
        eager.success,
        eager.messages,
        eager.policies_disclosed,
        eager.sensitive_leaked,
        eager.bytes
    );

    // ----- 2. rules as messages: install_rules over the engine ------------
    //
    // The shop sends Franz's assistant a rule set that reacts to its offer
    // events. Installation requires the InstallRules permission.
    let offer_rules = parse_program(
        r#"
        RULESET shop_offers
          RULE on_offer
            ON offer{{item[[var I]], price[[var P]]}} where var P <= 25
            DO SEND interested{item[var I]} TO "http://fussbaelle.biz"
          END
        END
        "#,
    )
    .expect("offer rules parse");

    let mut assistant = ReactiveEngine::new("http://franz/assistant");
    assistant.aaa = reweb::core::aaa::Aaa::new(AaaConfig {
        require_auth: true,
        authorize: true,
        accounting: true,
        accounting_events: false,
    });
    assistant
        .aaa
        .register("fussbaelle.biz", "shop-secret", vec!["partner".into()]);
    assistant
        .aaa
        .acl
        .grant("partner", Permission::ReceiveEvent("*".into()));
    assistant.aaa.acl.grant("partner", Permission::InstallRules);

    let shop_meta = MessageMeta::from_uri("http://fussbaelle.biz")
        .with_credentials("fussbaelle.biz", "shop-secret");
    assistant.receive(
        install_rules_payload(&offer_rules),
        &shop_meta,
        Timestamp(0),
    );
    println!(
        "\nassistant installed {} rule(s) from the shop",
        assistant.rule_count()
    );
    assert_eq!(assistant.rule_count(), 1);

    // The installed (remote!) rule now reacts to offers.
    let out = assistant.receive(
        parse_term(r#"offer{item["soccer ball"], price["19.99"]}"#).unwrap(),
        &shop_meta,
        Timestamp(1_000),
    );
    println!("installed rule reacted: {}", out[0].payload);
    assert_eq!(out[0].to, "http://fussbaelle.biz");

    // An over-budget offer does not trigger it.
    let out = assistant.receive(
        parse_term(r#"offer{item["goal"], price["299"]}"#).unwrap(),
        &shop_meta,
        Timestamp(2_000),
    );
    assert!(out.is_empty());

    // An unauthenticated party cannot install rules.
    let mallory = MessageMeta::from_uri("http://mallory");
    assistant.receive(
        install_rules_payload(&offer_rules),
        &mallory,
        Timestamp(3_000),
    );
    assert_eq!(assistant.rule_count(), 1, "mallory's rules rejected");
    println!(
        "mallory's install attempt denied; accounting recorded {} request(s)",
        assistant.aaa.records.len()
    );
}
