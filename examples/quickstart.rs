//! Quickstart: one rule, one event, one reaction.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a reactive engine, installs a rule written in the textual rule
//! language, feeds it an event, and shows the reaction — the smallest
//! complete tour of the ECA loop (event → condition → action).

use reweb::core::{MessageMeta, ReactiveEngine};
use reweb::term::{parse_term, Timestamp};

fn main() {
    // A node with some persistent local data: its customer registry.
    let mut engine = ReactiveEngine::new("http://shop.example");
    engine.qe.store.put(
        "http://shop.example/customers",
        parse_term(r#"customers[ customer{id["c1"], name["Ann"]} ]"#).unwrap(),
    );

    // One ECAA rule in the rule language: on an order event, look the
    // customer up (condition = Web query, parameterized by the event's
    // bindings), then either confirm or complain.
    engine
        .install_program(
            r#"
            RULE on_order
              ON order{{ id[[var O]], customer[[var C]] }}
              IF in "http://shop.example/customers" customer{{ id[[var C]], name[[var N]] }}
              THEN SEQ
                     PERSIST sale{order[var O], customer[var N]} IN "http://shop.example/sales";
                     SEND confirmation{order[var O], dear[var N]} TO "http://client.example";
                   END
              ELSE SEND rejection{order[var O], reason["unknown customer"]} TO "http://client.example"
            END
            "#,
        )
        .expect("the rule program parses");

    // An order from a known customer arrives as a Web message.
    let meta = MessageMeta::from_uri("http://client.example");
    let out = engine.receive(
        parse_term(r#"order{ id["o-1001"], customer["c1"] }"#).unwrap(),
        &meta,
        Timestamp(1_000),
    );

    println!("reaction messages:");
    for m in &out {
        println!("  -> {} : {}", m.to, m.payload);
    }

    // The persistent side effect:
    let sales = engine.qe.store.get("http://shop.example/sales").unwrap();
    println!("sales resource now: {sales}");

    // And one from an unknown customer takes the ELSE branch.
    let out = engine.receive(
        parse_term(r#"order{ id["o-1002"], customer["c999"] }"#).unwrap(),
        &meta,
        Timestamp(2_000),
    );
    println!("unknown customer: {}", out[0].payload);

    assert_eq!(engine.metrics.rules_fired, 2);
    println!(
        "rules fired: {}, condition evaluations: {}",
        engine.metrics.rules_fired, engine.metrics.condition_evals
    );
}
