//! End-to-end integration: the marketplace choreography across three
//! simulated Web nodes — composite events, conditions over persistent
//! data, procedures, transactional actions, absence deadlines, and
//! push messaging all working together (Theses 1, 2, 3, 5, 7, 8, 9).

use reweb::core::ReactiveEngine;
use reweb::term::{parse_term, Dur, Timestamp};
use reweb::websim::Simulation;

const H: u64 = 3_600_000;

fn shop() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://shop");
    e.qe.store.put(
        "http://shop/customers",
        parse_term(
            r#"customers[ customer{id["franz"], address["Munich"]},
                           customer{id["ann"], address["Springfield"]} ]"#,
        )
        .unwrap(),
    );
    e.install_program(
        r#"
        RULESET shop
          PROCEDURE ship(Order, Addr) DO
            SEQ
              PERSIST shipment{order[var Order], to[var Addr]} IN "http://shop/shipments";
              SEND dispatch{order[var Order], to[var Addr]} TO "http://warehouse";
            END
          END
          RULE on_paid
            ON and( order{{id[[var O]], customer[[var C]], total[[var T]]}},
                    payment{{order[[var O]], amount[[var A]]}} ) within 2h
               where var A >= var T
            IF in "http://shop/customers" customer{{id[[var C]], address[[var Addr]]}}
            THEN CALL ship(var O, var Addr)
            ELSE SEND problem{order[var O]} TO "http://customer"
          END
          RULE overdue
            ON absence( order{{id[[var O]]}}, payment{{order[[var O]]}}, 2h )
            DO SEND reminder{order[var O]} TO "http://customer"
          END
        END
        "#,
    )
    .unwrap();
    e
}

fn warehouse() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://warehouse");
    e.install_program(
        r#"RULE pick ON dispatch{{order[[var O]]}}
           DO SEND shipped{order[var O]} TO "http://customer" END"#,
    )
    .unwrap();
    e
}

fn build_sim() -> Simulation {
    let mut sim = Simulation::new(99);
    sim.set_latency(Dur::millis(25), 10);
    sim.add_engine("http://shop", shop());
    sim.add_engine("http://warehouse", warehouse());
    sim.add_sink("http://customer");
    sim
}

#[test]
fn paid_order_flows_through_both_nodes() {
    let mut sim = build_sim();
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o1"], customer["franz"], total["100"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"payment{order["o1"], amount["100"]}"#).unwrap(),
        Timestamp(10 * 60_000),
    );
    sim.run_until(Timestamp(3 * H));

    // Customer got exactly one `shipped` (from the warehouse).
    let inbox = sim.sink("http://customer");
    let shipped: Vec<_> = inbox
        .iter()
        .filter(|(_, e)| e.body.label() == Some("shipped"))
        .collect();
    assert_eq!(shipped.len(), 1);
    assert_eq!(shipped[0].1.from, "http://warehouse");

    // The shop's transactional procedure persisted the shipment.
    let shop = sim.engine("http://shop").unwrap();
    let shipments = shop.qe.store.get("http://shop/shipments").unwrap();
    assert_eq!(shipments.children().len(), 1);
    assert!(shipments.to_string().contains("Munich"));

    // No reminder was sent: payment arrived before the deadline.
    assert!(!inbox
        .iter()
        .any(|(_, e)| e.body.label() == Some("reminder")));
}

#[test]
fn unpaid_order_triggers_reminder_at_deadline() {
    let mut sim = build_sim();
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o2"], customer["ann"], total["50"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.run_until(Timestamp(3 * H));
    let inbox = sim.sink("http://customer");
    let reminders: Vec<_> = inbox
        .iter()
        .filter(|(_, e)| e.body.label() == Some("reminder"))
        .collect();
    assert_eq!(reminders.len(), 1);
    // Fired at the 2h deadline (plus transit), not at the end of the run.
    let at = reminders[0].0;
    assert!(
        at >= Timestamp(2 * H) && at < Timestamp(2 * H + 1_000),
        "{at}"
    );
}

#[test]
fn underpayment_never_ships() {
    let mut sim = build_sim();
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o3"], customer["franz"], total["100"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"payment{order["o3"], amount["10"]}"#).unwrap(),
        Timestamp(60_000),
    );
    sim.run_until(Timestamp(3 * H));
    let shop = sim.engine("http://shop").unwrap();
    assert!(!shop.qe.store.contains("http://shop/shipments"));
    // But the overdue reminder did fire (the WHERE-guarded payment does
    // not count as a payment event for the absence rule? It does — the
    // absence pattern has no amount constraint, so no reminder).
    let inbox = sim.sink("http://customer");
    assert!(!inbox
        .iter()
        .any(|(_, e)| e.body.label() == Some("reminder")));
}

#[test]
fn unknown_customer_takes_else_branch() {
    let mut sim = build_sim();
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"order{id["o4"], customer["nobody"], total["10"]}"#).unwrap(),
        Timestamp(0),
    );
    sim.post(
        "http://customer",
        "http://shop",
        parse_term(r#"payment{order["o4"], amount["10"]}"#).unwrap(),
        Timestamp(1_000),
    );
    sim.run_until(Timestamp(3 * H));
    let inbox = sim.sink("http://customer");
    assert!(inbox.iter().any(|(_, e)| e.body.label() == Some("problem")));
    // One condition evaluation served both branches (ECAA, Thesis 9).
    let shop = sim.engine("http://shop").unwrap();
    assert_eq!(shop.metrics.condition_evals, 1);
}
