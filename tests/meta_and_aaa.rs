//! Integration of Theses 11 and 12 over the simulated Web: rule sets
//! travelling as messages between engines, gated by authentication and
//! authorization, with accounting's double reactivity observable
//! end to end.

use reweb::core::meta::install_rules_payload;
use reweb::core::{parse_program, AaaConfig, Credentials, Permission, ReactiveEngine};
use reweb::term::{parse_term, Dur, Timestamp};
use reweb::websim::Simulation;

fn secured_engine() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://assistant");
    e.aaa = reweb::core::aaa::Aaa::new(AaaConfig {
        require_auth: true,
        authorize: true,
        accounting: true,
        accounting_events: true,
    });
    e.aaa.register("shop", "s3cret", vec!["partner".into()]);
    e.aaa
        .acl
        .grant("partner", Permission::ReceiveEvent("*".into()));
    e.aaa.acl.grant("partner", Permission::InstallRules);
    // The accounting axis: count every allowed request per principal.
    e.install_program(
        r#"
        RULE meter ON accounting{{principal[[var P]], allowed[["true"]]}}
          DO PERSIST hit[var P] IN "http://assistant/usage"
        END
        "#,
    )
    .unwrap();
    e
}

#[test]
fn rules_exchanged_between_engines_over_the_simulated_web() {
    let mut sim = Simulation::new(5);
    sim.set_latency(Dur::millis(10), 5);
    sim.add_engine("http://assistant", secured_engine());
    sim.add_sink("http://shop");
    sim.set_outgoing_credentials(
        "http://shop",
        Credentials {
            principal: "shop".into(),
            secret: "s3cret".into(),
        },
    );

    // The shop ships a rule set to the assistant…
    let rules = parse_program(
        r#"RULE on_offer ON offer{{item[[var I]], price[[var P]]}} where var P <= 25
           DO SEND interested{item[var I]} TO "http://shop" END"#,
    )
    .unwrap();
    sim.post(
        "http://shop",
        "http://assistant",
        install_rules_payload(&rules),
        Timestamp(0),
    );
    // …then sends offers; the *installed* rule answers the cheap one.
    sim.post(
        "http://shop",
        "http://assistant",
        parse_term(r#"offer{item["ball"], price["19.99"]}"#).unwrap(),
        Timestamp(1_000),
    );
    sim.post(
        "http://shop",
        "http://assistant",
        parse_term(r#"offer{item["goal"], price["299"]}"#).unwrap(),
        Timestamp(2_000),
    );
    sim.run_until(Timestamp(10_000));

    let answers = sim.sink("http://shop");
    let interested: Vec<_> = answers
        .iter()
        .filter(|(_, e)| e.body.label() == Some("interested"))
        .collect();
    assert_eq!(interested.len(), 1);
    assert!(interested[0].1.body.to_string().contains("ball"));

    // The meter rule (double reactivity) counted three allowed requests.
    let assistant = sim.engine("http://assistant").unwrap();
    let usage = assistant.qe.store.get("http://assistant/usage").unwrap();
    assert_eq!(usage.children().len(), 3);
    // And the billing report prices them.
    let report = assistant.aaa.billing_report(0.10);
    assert!(report.to_string().contains("messages[\"3\"]"));
}

#[test]
fn unauthenticated_rule_injection_is_rejected_and_accounted() {
    let mut sim = Simulation::new(5);
    sim.add_engine("http://assistant", secured_engine());
    sim.add_sink("http://mallory");
    // Mallory has no credentials configured.
    let rules =
        parse_program(r#"RULE exfil ON ping DO SEND secrets TO "http://mallory" END"#).unwrap();
    sim.post(
        "http://mallory",
        "http://assistant",
        install_rules_payload(&rules),
        Timestamp(0),
    );
    sim.post(
        "http://mallory",
        "http://assistant",
        parse_term("ping").unwrap(),
        Timestamp(1_000),
    );
    sim.run_until(Timestamp(5_000));
    assert_eq!(sim.sink("http://mallory").len(), 0);
    let assistant = sim.engine("http://assistant").unwrap();
    assert_eq!(assistant.rule_count(), 1, "only the meter rule");
    assert_eq!(assistant.metrics.events_denied, 2);
    // Denials are visible in the accounting records.
    assert!(assistant.aaa.records.iter().any(|r| !r.allowed));
}

#[test]
fn wrong_password_is_denied() {
    let mut sim = Simulation::new(5);
    sim.add_engine("http://assistant", secured_engine());
    sim.add_sink("http://shop");
    sim.set_outgoing_credentials(
        "http://shop",
        Credentials {
            principal: "shop".into(),
            secret: "wrong".into(),
        },
    );
    sim.post(
        "http://shop",
        "http://assistant",
        parse_term("offer{item[\"x\"], price[\"1\"]}").unwrap(),
        Timestamp(0),
    );
    sim.run_until(Timestamp(2_000));
    let assistant = sim.engine("http://assistant").unwrap();
    assert_eq!(assistant.metrics.events_denied, 1);
}

#[test]
fn reified_rules_survive_the_wire_intact() {
    // Round-trip through the exact payload shape used on the wire.
    let original = parse_program(
        r#"
        RULESET travelling
          PROCEDURE p(X) DO LOG got[var X] END
          RULE r ON e{{v[[var V]]}}
            IF in "http://somewhere" d[[var V]] THEN CALL p(var V)
            ELSE NOOP
          END
        END
        "#,
    )
    .unwrap();
    let payload = install_rules_payload(&original);
    let reparsed =
        reweb::core::meta::ruleset_from_term(payload.children().first().unwrap()).unwrap();
    assert_eq!(original, reparsed);
}
