//! Executable documentation: every fenced snippet in
//! `docs/RULE_LANGUAGE.md` is parsed by the parser its fence tag names,
//! so the language reference cannot drift from the grammar the code
//! actually accepts. Program and rule snippets are additionally
//! round-tripped through their `Display` form (the Thesis 11 invariant).

use reweb::core::{parse_action, parse_program, parse_rule};
use reweb::events::parse_event_query;
use reweb::query::parser::{parse_condition, parse_construct_term, parse_query_term};
use reweb::term::parse_term;

/// A fenced snippet: tag, body, and the line the fence opened on.
struct Snippet {
    tag: String,
    body: String,
    line: usize,
}

fn extract_snippets(doc: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut current: Option<Snippet> = None;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(s) => out.push(s),
                None => {
                    current = Some(Snippet {
                        tag: rest.trim().to_string(),
                        body: String::new(),
                        line: i + 1,
                    })
                }
            }
        } else if let Some(s) = current.as_mut() {
            s.body.push_str(line);
            s.body.push('\n');
        }
    }
    assert!(current.is_none(), "unclosed code fence in RULE_LANGUAGE.md");
    out
}

/// Panic with the snippet's location; generic so it slots into any
/// parser's `unwrap_or_else`.
fn fail<T>(s: &Snippet, e: &dyn std::fmt::Display) -> T {
    panic!(
        "docs/RULE_LANGUAGE.md:{} — `{}` snippet does not parse: {e}\n{}",
        s.line, s.tag, s.body
    )
}

#[test]
fn every_example_in_the_reference_parses() {
    let doc = include_str!("../docs/RULE_LANGUAGE.md");
    let snippets = extract_snippets(doc);

    let mut checked = 0usize;
    for s in &snippets {
        match s.tag.as_str() {
            // Untagged/`text` fences are grammar sketches, not examples.
            "" | "text" => continue,
            "reweb" => {
                let set = parse_program(&s.body).unwrap_or_else(|e| fail(s, &e));
                let reparsed = parse_program(&set.to_string()).unwrap_or_else(|e| {
                    panic!(
                        "docs/RULE_LANGUAGE.md:{} — program does not round-trip: {e}\nprinted:\n{set}",
                        s.line
                    )
                });
                assert_eq!(
                    set, reparsed,
                    "round-trip changed the program at line {}",
                    s.line
                );
            }
            "reweb-rule" => {
                let rule = parse_rule(&s.body).unwrap_or_else(|e| fail(s, &e));
                let reparsed = parse_rule(&rule.to_string()).unwrap_or_else(|e| {
                    panic!(
                        "docs/RULE_LANGUAGE.md:{} — rule does not round-trip: {e}\nprinted:\n{rule}",
                        s.line
                    )
                });
                assert_eq!(
                    rule, reparsed,
                    "round-trip changed the rule at line {}",
                    s.line
                );
            }
            "reweb-action" => {
                parse_action(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-event" => {
                parse_event_query(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-query" => {
                parse_query_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-cond" => {
                parse_condition(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-construct" => {
                parse_construct_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-term" => {
                parse_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            other => panic!(
                "docs/RULE_LANGUAGE.md:{} — unknown fence tag `{other}`; \
                 add a parser arm here or retag the snippet",
                s.line
            ),
        }
        checked += 1;
    }
    // Guard against the reference quietly losing its examples.
    assert!(
        checked >= 18,
        "expected at least 18 verified snippets, found {checked}"
    );
}

/// The symbol-interning invariant: parsing allocates interned labels,
/// attribute and variable names, and printing resolves them back — so
/// for every printable snippet, print-of-parse must be a byte-identical
/// fixed point (`print(parse(print(parse(s)))) == print(parse(s))`).
/// A `Sym` ordering bug (ordering by table id instead of by string)
/// would reorder attribute maps and binding lists and break this.
#[test]
fn printed_snippets_are_byte_identical_fixed_points() {
    let doc = include_str!("../docs/RULE_LANGUAGE.md");
    let mut checked = 0usize;
    for s in extract_snippets(doc) {
        let printed = match s.tag.as_str() {
            "reweb" => parse_program(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-rule" => parse_rule(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-event" => parse_event_query(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-query" => parse_query_term(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-cond" => parse_condition(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-construct" => parse_construct_term(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            "reweb-term" => parse_term(&s.body)
                .unwrap_or_else(|e| fail(&s, &e))
                .to_string(),
            _ => continue,
        };
        let reprinted = match s.tag.as_str() {
            "reweb" => parse_program(&printed).map(|x| x.to_string()),
            "reweb-rule" => parse_rule(&printed).map(|x| x.to_string()),
            "reweb-event" => parse_event_query(&printed).map(|x| x.to_string()),
            "reweb-query" => parse_query_term(&printed).map(|x| x.to_string()),
            "reweb-cond" => parse_condition(&printed).map(|x| x.to_string()),
            "reweb-construct" => parse_construct_term(&printed).map(|x| x.to_string()),
            "reweb-term" => parse_term(&printed).map(|x| x.to_string()),
            _ => unreachable!(),
        }
        .unwrap_or_else(|e| {
            panic!(
                "docs/RULE_LANGUAGE.md:{} — printed form does not reparse: {e}\n{printed}",
                s.line
            )
        });
        assert_eq!(
            printed, reprinted,
            "printing is not a fixed point for the `{}` snippet at line {}",
            s.tag, s.line
        );
        checked += 1;
    }
    // One fewer than the parse test's floor: `reweb-action` snippets
    // parse but are not round-trip printed here.
    assert!(
        checked >= 17,
        "expected at least 17 printable snippets, found {checked}"
    );
}

mod interning_props {
    use proptest::prelude::*;
    use reweb::term::{parse_term, Sym, Term};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Intern → resolve is the identity on strings, the same string
        /// always yields the same symbol, and ordering follows strings.
        #[test]
        fn intern_resolve_round_trips(
            a in proptest::string::string_regex("[a-z_][a-z0-9_]{0,24}").unwrap(),
            b in proptest::string::string_regex("[A-Za-z0-9 :./_-]{0,32}").unwrap(),
        ) {
            let sa = Sym::new(&a);
            let sb = Sym::new(&b);
            prop_assert_eq!(sa.as_str(), a.as_str());
            prop_assert_eq!(sb.as_str(), b.as_str());
            prop_assert_eq!(Sym::new(&a), sa);
            prop_assert_eq!(Sym::lookup(&a), Some(sa));
            prop_assert_eq!(sa.cmp(&sb), a.as_str().cmp(b.as_str()));
            prop_assert_eq!(sa == sb, a == b);
        }

        /// Terms built from random labels/attributes print, reparse, and
        /// reprint byte-identically — the end-to-end form of the
        /// resolve-through-strings guarantee.
        #[test]
        fn random_elements_round_trip_through_print(
            label in proptest::string::string_regex("[a-z][a-z0-9_]{0,12}").unwrap(),
            attrs in proptest::collection::vec(
                (
                    proptest::string::string_regex("[a-z][a-z0-9_]{0,8}").unwrap(),
                    proptest::string::string_regex("[A-Za-z0-9 ]{0,12}").unwrap(),
                ),
                0..4,
            ),
            text in proptest::string::string_regex("[A-Za-z0-9 ]{0,16}").unwrap(),
        ) {
            let mut b = Term::build(label.as_str()).unordered();
            for (k, v) in &attrs {
                b = b.attr(k.as_str(), v.as_str());
            }
            let t = b.text_child(text).finish();
            let printed = t.to_string();
            let reparsed = parse_term(&printed).expect("printed term reparses");
            prop_assert_eq!(&t, &reparsed);
            prop_assert_eq!(printed, reparsed.to_string());
        }
    }

    /// Interning the same vocabulary from many threads at once converges
    /// on one id per string — the engine's thread-per-shard workers rely
    /// on this.
    #[test]
    fn concurrent_interning_is_race_free() {
        let words: Vec<String> = (0..64).map(|i| format!("doc-race-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let words = words.clone();
                std::thread::spawn(move || {
                    (0..words.len())
                        .map(|i| Sym::new(&words[(i + t) % words.len()]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let per_thread: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for syms in &per_thread {
            for s in syms {
                assert_eq!(Sym::new(s.as_str()), *s, "resolve → intern is stable");
            }
        }
        // Every thread resolved every word to the same symbol.
        for w in &words {
            let expect = Sym::new(w);
            assert!(per_thread.iter().all(|syms| syms.contains(&expect)));
        }
    }
}

/// The big worked program in §5 is not just parseable — it installs
/// into an engine and its nested set is addressable by path.
#[test]
fn reference_program_installs() {
    let doc = include_str!("../docs/RULE_LANGUAGE.md");
    let program = extract_snippets(doc)
        .into_iter()
        .find(|s| s.tag == "reweb")
        .expect("the reference contains a full program");
    let mut set = parse_program(&program.body).expect("parses");
    assert!(
        set.find_mut("shop.orders").is_some(),
        "nested set addressable"
    );
    let mut engine = reweb::core::ReactiveEngine::new("http://shop");
    engine.install(&set).expect("installs");
    assert!(engine.rule_count() > 0);
}
