//! Executable documentation: every fenced snippet in
//! `docs/RULE_LANGUAGE.md` is parsed by the parser its fence tag names,
//! so the language reference cannot drift from the grammar the code
//! actually accepts. Program and rule snippets are additionally
//! round-tripped through their `Display` form (the Thesis 11 invariant).

use reweb::core::{parse_action, parse_program, parse_rule};
use reweb::events::parse_event_query;
use reweb::query::parser::{parse_condition, parse_construct_term, parse_query_term};
use reweb::term::parse_term;

/// A fenced snippet: tag, body, and the line the fence opened on.
struct Snippet {
    tag: String,
    body: String,
    line: usize,
}

fn extract_snippets(doc: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut current: Option<Snippet> = None;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(s) => out.push(s),
                None => {
                    current = Some(Snippet {
                        tag: rest.trim().to_string(),
                        body: String::new(),
                        line: i + 1,
                    })
                }
            }
        } else if let Some(s) = current.as_mut() {
            s.body.push_str(line);
            s.body.push('\n');
        }
    }
    assert!(current.is_none(), "unclosed code fence in RULE_LANGUAGE.md");
    out
}

/// Panic with the snippet's location; generic so it slots into any
/// parser's `unwrap_or_else`.
fn fail<T>(s: &Snippet, e: &dyn std::fmt::Display) -> T {
    panic!(
        "docs/RULE_LANGUAGE.md:{} — `{}` snippet does not parse: {e}\n{}",
        s.line, s.tag, s.body
    )
}

#[test]
fn every_example_in_the_reference_parses() {
    let doc = include_str!("../docs/RULE_LANGUAGE.md");
    let snippets = extract_snippets(doc);

    let mut checked = 0usize;
    for s in &snippets {
        match s.tag.as_str() {
            // Untagged/`text` fences are grammar sketches, not examples.
            "" | "text" => continue,
            "reweb" => {
                let set = parse_program(&s.body).unwrap_or_else(|e| fail(s, &e));
                let reparsed = parse_program(&set.to_string()).unwrap_or_else(|e| {
                    panic!(
                        "docs/RULE_LANGUAGE.md:{} — program does not round-trip: {e}\nprinted:\n{set}",
                        s.line
                    )
                });
                assert_eq!(
                    set, reparsed,
                    "round-trip changed the program at line {}",
                    s.line
                );
            }
            "reweb-rule" => {
                let rule = parse_rule(&s.body).unwrap_or_else(|e| fail(s, &e));
                let reparsed = parse_rule(&rule.to_string()).unwrap_or_else(|e| {
                    panic!(
                        "docs/RULE_LANGUAGE.md:{} — rule does not round-trip: {e}\nprinted:\n{rule}",
                        s.line
                    )
                });
                assert_eq!(
                    rule, reparsed,
                    "round-trip changed the rule at line {}",
                    s.line
                );
            }
            "reweb-action" => {
                parse_action(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-event" => {
                parse_event_query(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-query" => {
                parse_query_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-cond" => {
                parse_condition(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-construct" => {
                parse_construct_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            "reweb-term" => {
                parse_term(&s.body).unwrap_or_else(|e| fail(s, &e));
            }
            other => panic!(
                "docs/RULE_LANGUAGE.md:{} — unknown fence tag `{other}`; \
                 add a parser arm here or retag the snippet",
                s.line
            ),
        }
        checked += 1;
    }
    // Guard against the reference quietly losing its examples.
    assert!(
        checked >= 18,
        "expected at least 18 verified snippets, found {checked}"
    );
}

/// The big worked program in §5 is not just parseable — it installs
/// into an engine and its nested set is addressable by path.
#[test]
fn reference_program_installs() {
    let doc = include_str!("../docs/RULE_LANGUAGE.md");
    let program = extract_snippets(doc)
        .into_iter()
        .find(|s| s.tag == "reweb")
        .expect("the reference contains a full program");
    let mut set = parse_program(&program.body).expect("parses");
    assert!(
        set.find_mut("shop.orders").is_some(),
        "nested set addressable"
    );
    let mut engine = reweb::core::ReactiveEngine::new("http://shop");
    engine.install(&set).expect("installs");
    assert!(engine.rule_count() > 0);
}
