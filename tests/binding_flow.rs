//! Cross-crate integration: the variable binding flow Thesis 7 demands —
//! event part → condition part (including views) → action part — plus
//! rule-set scoping of procedures.

use reweb::core::{MessageMeta, ReactiveEngine};
use reweb::term::{parse_term, Timestamp};

#[test]
fn bindings_flow_event_to_condition_to_action() {
    let mut e = ReactiveEngine::new("http://n");
    e.qe.store.put(
        "http://n/people",
        parse_term(
            r#"people[ person{id["p1"], name["Ann"], dept["eng"]},
                        person{id["p2"], name["Bob"], dept["ops"]} ]"#,
        )
        .unwrap(),
    );
    e.install_program(
        r#"
        RULE badge
          ON entry{{person[[var P]], gate[[var G]]}}
          IF in "http://n/people" person{{id[[var P]], name[[var N]], dept[[var D]]}}
          THEN PERSIST access{name[var N], dept[var D], gate[var G]} IN "http://n/log"
        END
        "#,
    )
    .unwrap();
    let meta = MessageMeta::from_uri("http://gate");
    e.receive(
        parse_term(r#"entry{person["p2"], gate["east"]}"#).unwrap(),
        &meta,
        Timestamp(1),
    );
    let log = e.qe.store.get("http://n/log").unwrap();
    // P came from the event, N and D from the condition, G from the event
    // again — all three met in the action.
    assert_eq!(
        log.children()[0].to_string(),
        r#"access{name["Bob"], dept["ops"], gate["east"]}"#
    );
}

#[test]
fn conditions_can_query_views() {
    let mut e = ReactiveEngine::new("http://n");
    e.qe.store.put(
        "http://n/customers",
        parse_term(
            r#"customers[ customer{id["c1"], rating["5"]},
                           customer{id["c2"], rating["1"]} ]"#,
        )
        .unwrap(),
    );
    e.install_program(
        r#"
        RULESET shop
          VIEW "view://vip" CONSTRUCT vip[var C]
            FROM in "http://n/customers" customer{{id[[var C]], rating[[var R]]}} and var R >= 4
          END
          RULE greet
            ON visit{{customer[[var C]]}}
            IF in "view://vip" vip[[var C]]
            THEN LOG red_carpet[var C]
            ELSE LOG normal[var C]
          END
        END
        "#,
    )
    .unwrap();
    let meta = MessageMeta::from_uri("http://door");
    e.receive(
        parse_term(r#"visit{customer["c1"]}"#).unwrap(),
        &meta,
        Timestamp(1),
    );
    e.receive(
        parse_term(r#"visit{customer["c2"]}"#).unwrap(),
        &meta,
        Timestamp(2),
    );
    let logs: Vec<String> = e.action_log.iter().map(|t| t.to_string()).collect();
    assert_eq!(logs, vec![r#"red_carpet["c1"]"#, r#"normal["c2"]"#]);
}

#[test]
fn ruleset_scoping_shadows_procedures() {
    let mut e = ReactiveEngine::new("http://n");
    e.install_program(
        r#"
        RULESET outer
          PROCEDURE greet(X) DO LOG outer_greet[var X] END
          RULE r1 ON a{{v[[var V]]}} DO CALL greet(var V) END
          RULESET inner
            PROCEDURE greet(X) DO LOG inner_greet[var X] END
            RULE r2 ON b{{v[[var V]]}} DO CALL greet(var V) END
          END
        END
        "#,
    )
    .unwrap();
    let meta = MessageMeta::from_uri("http://x");
    e.receive(parse_term(r#"a{v["1"]}"#).unwrap(), &meta, Timestamp(1));
    e.receive(parse_term(r#"b{v["2"]}"#).unwrap(), &meta, Timestamp(2));
    let logs: Vec<String> = e.action_log.iter().map(|t| t.to_string()).collect();
    // r1 sees the outer definition; r2 sees the inner (shadowing).
    assert_eq!(logs, vec![r#"outer_greet["1"]"#, r#"inner_greet["2"]"#]);
}

#[test]
fn detect_rules_feed_ordinary_rules_with_bindings() {
    let mut e = ReactiveEngine::new("http://n");
    e.install_program(
        r#"
        DETECT big_order{id[var O], total[var T]}
          ON order{{id[[var O]], total[[var T]]}} where var T >= 1000
        END
        RULE audit ON big_order{{id[[var O]], total[[var T]]}}
          DO PERSIST audit{id[var O], total[var T]} IN "http://n/audit"
        END
        "#,
    )
    .unwrap();
    let meta = MessageMeta::from_uri("http://x");
    e.receive(
        parse_term(r#"order{id["o1"], total["5000"]}"#).unwrap(),
        &meta,
        Timestamp(1),
    );
    e.receive(
        parse_term(r#"order{id["o2"], total["10"]}"#).unwrap(),
        &meta,
        Timestamp(2),
    );
    let audit = e.qe.store.get("http://n/audit").unwrap();
    assert_eq!(audit.children().len(), 1);
    assert!(audit.to_string().contains("o1"));
    assert_eq!(e.metrics.events_derived, 1);
}

#[test]
fn elseif_chains_take_first_holding_branch() {
    let mut e = ReactiveEngine::new("http://n");
    e.qe.store.put(
        "http://n/limits",
        parse_term(r#"limits[ gold["1000"], silver["100"] ]"#).unwrap(),
    );
    e.install_program(
        r#"
        RULE classify ON spend{{amount[[var A]]}}
          IF in "http://n/limits" gold[[var G]] and var A >= var G THEN LOG gold_tier
          ELSEIF in "http://n/limits" silver[[var S]] and var A >= var S THEN LOG silver_tier
          ELSE LOG basic_tier
        END
        "#,
    )
    .unwrap();
    let meta = MessageMeta::from_uri("http://x");
    for amount in ["5000", "500", "5"] {
        e.receive(
            parse_term(&format!(r#"spend{{amount["{amount}"]}}"#)).unwrap(),
            &meta,
            Timestamp(1),
        );
    }
    let logs: Vec<String> = e.action_log.iter().map(|t| t.to_string()).collect();
    assert_eq!(logs, vec!["gold_tier", "silver_tier", "basic_tier"]);
}
