//! Executable documentation: every fenced snippet in
//! `docs/WIRE_PROTOCOL.md` is decoded by the decoder its fence tag
//! names, so the protocol reference cannot drift from the envelopes the
//! server actually speaks. Envelope snippets are round-tripped through
//! their constructed form, and the worked hex frames are re-encoded
//! byte-for-byte — the documented CRCs are checked, not trusted.

use reweb::net::wire::{ErrorCode, Reply, Request};
use reweb::term::frame::{encode_frame, scan_frames, TailState};
use reweb::term::parse_term;

/// A fenced snippet: tag, body, and the line the fence opened on.
struct Snippet {
    tag: String,
    body: String,
    line: usize,
}

fn extract_snippets(doc: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut current: Option<Snippet> = None;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(s) => out.push(s),
                None => {
                    current = Some(Snippet {
                        tag: rest.trim().to_string(),
                        body: String::new(),
                        line: i + 1,
                    })
                }
            }
        } else if let Some(s) = current.as_mut() {
            s.body.push_str(line);
            s.body.push('\n');
        }
    }
    assert!(current.is_none(), "unclosed code fence in WIRE_PROTOCOL.md");
    out
}

/// Panic with the snippet's location.
fn fail<T>(s: &Snippet, e: &dyn std::fmt::Display) -> T {
    panic!(
        "docs/WIRE_PROTOCOL.md:{} — `{}` snippet does not decode: {e}\n{}",
        s.line, s.tag, s.body
    )
}

/// A hex fence body → bytes: `#` starts a comment, everything else must
/// be whitespace-separated hex pairs.
fn parse_hex(s: &Snippet) -> Vec<u8> {
    let mut out = Vec::new();
    for line in s.body.lines() {
        let code = line.split('#').next().unwrap_or("");
        for tok in code.split_whitespace() {
            let b = u8::from_str_radix(tok, 16).unwrap_or_else(|_| {
                panic!(
                    "docs/WIRE_PROTOCOL.md:{} — `{tok}` is not a hex byte",
                    s.line
                )
            });
            out.push(b);
        }
    }
    out
}

#[test]
fn every_example_in_the_reference_decodes() {
    let doc = include_str!("../docs/WIRE_PROTOCOL.md");
    let snippets = extract_snippets(doc);

    let mut checked = 0usize;
    let mut hex_frames = 0usize;
    for s in &snippets {
        match s.tag.as_str() {
            // Untagged/`text` fences are grammar and session sketches.
            "" | "text" => continue,
            "reweb-request" => {
                let t = parse_term(&s.body).unwrap_or_else(|e| fail(s, &e));
                let req = Request::from_term(&t).unwrap_or_else(|e| fail(s, &e));
                // The constructed form must reparse to the same request
                // (the Display round-trip the WAL and wire both rely on).
                let printed = req.to_term().to_string();
                let back = Request::from_term(&parse_term(&printed).unwrap())
                    .unwrap_or_else(|e| fail(s, &e));
                assert_eq!(
                    req, back,
                    "round-trip changed the request at line {}",
                    s.line
                );
            }
            "reweb-reply" => {
                let t = parse_term(&s.body).unwrap_or_else(|e| fail(s, &e));
                let rep = Reply::from_term(&t).unwrap_or_else(|e| fail(s, &e));
                let printed = rep.to_term().to_string();
                let back = Reply::from_term(&parse_term(&printed).unwrap())
                    .unwrap_or_else(|e| fail(s, &e));
                assert_eq!(rep, back, "round-trip changed the reply at line {}", s.line);
            }
            "reweb-term" => {
                let t = parse_term(&s.body).unwrap_or_else(|e| fail(s, &e));
                let reparsed = parse_term(&t.to_string()).unwrap_or_else(|e| fail(s, &e));
                assert_eq!(t, reparsed, "print is not a fixed point at line {}", s.line);
            }
            "reweb-frame-hex" => {
                let bytes = parse_hex(s);
                let scan = scan_frames(&bytes);
                assert_eq!(
                    scan.frames.len(),
                    1,
                    "docs/WIRE_PROTOCOL.md:{} — expected exactly one frame, found {}",
                    s.line,
                    scan.frames.len()
                );
                assert!(
                    matches!(scan.tail, TailState::Clean),
                    "docs/WIRE_PROTOCOL.md:{} — trailing bytes after the frame: {:?}",
                    s.line,
                    scan.tail
                );
                let payload = &scan.frames[0].1;
                // The payload must be a protocol envelope — one
                // direction or the other (labels are disjoint).
                let as_req = Request::decode(payload);
                let as_rep = Reply::decode(payload);
                assert!(
                    as_req.is_ok() || as_rep.is_ok(),
                    "docs/WIRE_PROTOCOL.md:{} — hex payload is not an envelope: {} / {}",
                    s.line,
                    as_req.unwrap_err(),
                    as_rep.unwrap_err()
                );
                // Re-encoding must reproduce the documented bytes — this
                // verifies the worked `len` and CRC values in the doc.
                assert_eq!(
                    encode_frame(payload),
                    bytes,
                    "docs/WIRE_PROTOCOL.md:{} — documented frame bytes are not canonical",
                    s.line
                );
                hex_frames += 1;
            }
            other => panic!(
                "docs/WIRE_PROTOCOL.md:{} — unknown fence tag `{other}`; \
                 add a decoder arm here or retag the snippet",
                s.line
            ),
        }
        checked += 1;
    }
    // Guard against the reference quietly losing its examples.
    assert!(
        checked >= 14,
        "expected at least 14 verified snippets, found {checked}"
    );
    assert!(
        hex_frames >= 2,
        "expected at least 2 worked byte examples, found {hex_frames}"
    );
}

/// The documented hex frames carry the exact envelopes the prose says
/// they do — `sync{id["7"]}` and its `done` answer.
#[test]
fn worked_frames_are_the_sync_exchange() {
    let doc = include_str!("../docs/WIRE_PROTOCOL.md");
    let frames: Vec<Vec<u8>> = extract_snippets(doc)
        .iter()
        .filter(|s| s.tag == "reweb-frame-hex")
        .map(parse_hex)
        .collect();
    assert_eq!(frames[0], (Request::Sync { id: 7 }).encode());
    assert_eq!(frames[1], (Reply::Done { id: 7 }).encode());
}

/// Every error code in the §4 catalogue table parses back through
/// [`ErrorCode::parse`], and every code the enum can produce appears in
/// the table — the catalogue is complete in both directions.
#[test]
fn error_catalogue_matches_the_enum() {
    let doc = include_str!("../docs/WIRE_PROTOCOL.md");
    let mut documented = Vec::new();
    for line in doc.lines() {
        // Table rows look like: | `bad-schema` | … | closes |
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(code) = rest.split('`').next() else {
            continue;
        };
        if let Ok(c) = ErrorCode::parse(code) {
            assert_eq!(c.as_str(), code);
            documented.push(code.to_string());
        }
    }
    let all = [
        ErrorCode::BadSchema,
        ErrorCode::NoHello,
        ErrorCode::BadEnvelope,
        ErrorCode::MalformedFrame,
        ErrorCode::OversizedFrame,
        ErrorCode::NotGateway,
        ErrorCode::Engine,
        ErrorCode::ShuttingDown,
        ErrorCode::Busy,
    ];
    for code in all {
        assert!(
            documented.contains(&code.as_str().to_string()),
            "error code `{code}` is missing from the docs/WIRE_PROTOCOL.md catalogue"
        );
    }
    assert_eq!(
        documented.len(),
        all.len(),
        "duplicate rows in the catalogue"
    );
}

/// The defaults table in §6 matches [`reweb::net::NetConfig`]'s actual
/// `Default` — the doc may round units but not drift.
#[test]
fn defaults_table_matches_netconfig() {
    use reweb::net::NetConfig;
    let cfg = NetConfig::default();
    let doc = include_str!("../docs/WIRE_PROTOCOL.md");
    let cell = |field: &str| -> String {
        doc.lines()
            .find(|l| l.contains(&format!("| `{field}` |")))
            .unwrap_or_else(|| panic!("defaults table has no `{field}` row"))
            .split('|')
            .nth(2)
            .unwrap()
            .trim()
            .to_string()
    };
    assert_eq!(cell("max_batch"), cfg.max_batch.to_string());
    assert_eq!(
        cell("batch_latency"),
        format!("{} ms", cfg.batch_latency.as_millis())
    );
    assert_eq!(cell("queue_capacity"), cfg.queue_capacity.to_string());
    assert_eq!(cell("max_body"), "1 MiB");
    assert_eq!(cfg.max_body, 1 << 20);
    assert_eq!(cell("reply_buffer"), cfg.reply_buffer.to_string());
    assert_eq!(cell("rate_limit"), "off");
    assert!(cfg.rate_limit.is_none());
    assert_eq!(cell("max_connections"), "off");
    assert!(cfg.max_connections.is_none());
    assert_eq!(cell("delivery_journal"), "off");
    assert!(cfg.delivery_journal.is_none());
}

/// The hello example in §3 actually opens a session against a live
/// server — the reference's opening lines are not hypothetical.
#[test]
fn documented_hello_opens_a_real_session() {
    use reweb::core::ReactiveEngine;
    use reweb::net::{NetConfig, NetServer};
    use std::io::Write;

    let mut server = NetServer::bind(
        "127.0.0.1:0",
        ReactiveEngine::new("http://doc.example"),
        NetConfig::default(),
    )
    .expect("bind");
    let addr = server.local_addr();

    let doc = include_str!("../docs/WIRE_PROTOCOL.md");
    let hello = extract_snippets(doc)
        .into_iter()
        .find(|s| s.tag == "reweb-request" && s.body.trim_start().starts_with("hello"))
        .expect("the reference documents hello");

    let mut sock = std::net::TcpStream::connect(addr).expect("connect");
    let payload = parse_term(&hello.body).unwrap().to_string();
    sock.write_all(&encode_frame(payload.as_bytes())).unwrap();
    sock.write_all(&(Request::Sync { id: 7 }).encode()).unwrap();

    let mut replies = Vec::new();
    let mut buf = Vec::new();
    use std::io::Read;
    let mut chunk = [0u8; 4096];
    while replies.len() < 2 {
        let n = sock.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed before welcome+done");
        buf.extend_from_slice(&chunk[..n]);
        let scan = scan_frames(&buf);
        replies = scan
            .frames
            .iter()
            .map(|(_, p)| Reply::decode(p).expect("server sent a valid reply"))
            .collect();
    }
    assert!(
        matches!(&replies[0], Reply::Welcome { schema, .. } if schema == "reweb-net/1"),
        "expected welcome, got {:?}",
        replies[0]
    );
    assert_eq!(replies[1], Reply::Done { id: 7 });
    drop(sock);
    server.shutdown();
}
