//! Workspace-wiring smoke test: every module the `reweb` facade
//! re-exports is reachable under its facade path, and a trivial
//! end-to-end ECA rule fires through the stack. This is the test that
//! catches a broken `Cargo.toml` dependency edge or a renamed crate
//! before anything subtler does.

use reweb::core::{MessageMeta, ReactiveEngine};
use reweb::events::{parse_event_query, Event, EventId};
use reweb::production::{CaRule, ProductionEngine};
use reweb::query::{match_at, parse_query_term, Bindings};
use reweb::term::{parse_term, Term, Timestamp};
use reweb::update::{Action, Update};
use reweb::websim::Simulation;
use reweb::{InMessage, ShardedEngine};

/// Touch one symbol from each re-exported layer so a missing edge is a
/// compile error here, with the facade path in the message.
#[test]
fn every_facade_module_is_reachable() {
    // term
    let t: Term = parse_term(r#"a{ b["x"] }"#).unwrap();
    assert_eq!(
        t.to_string(),
        parse_term(&t.to_string()).unwrap().to_string()
    );

    // query
    let q = parse_query_term("a{{ b[[var X]] }}").unwrap();
    assert!(!match_at(&q, &t, &Bindings::new()).is_empty());

    // events
    let eq = parse_event_query("and(a, b) within 5s").unwrap();
    let _ = format!("{eq:?}");
    let ev = Event::new(EventId(1), Timestamp(0), t.clone());
    assert_eq!(ev.id, EventId(1));

    // update
    let a = Action::Log(reweb::query::parse_construct_term("entry[\"1\"]").unwrap());
    assert!(matches!(a, Action::Log(_)));
    let _u: Update = Update::insert(
        "http://n/r",
        parse_query_term("r[[]]").unwrap(),
        reweb::query::parse_construct_term("item[\"1\"]").unwrap(),
    );

    // core
    let engine = ReactiveEngine::new("http://node.example");
    assert_eq!(engine.metrics.rules_fired, 0);

    // production
    let pe = ProductionEngine::new();
    assert_eq!(pe.rule_count(), 0);
    let _ = CaRule::new("noop", reweb::query::Condition::always_true(), Action::Noop);

    // websim
    let sim = Simulation::new(3);
    let _ = format!("{:?}", sim.metrics);
}

/// The smallest complete ECA loop through the facade: install a textual
/// rule, receive a matching event, observe the reaction.
#[test]
fn end_to_end_rule_fires_through_facade() {
    let mut engine = ReactiveEngine::new("http://shop.example");
    engine.qe.store.put(
        "http://shop.example/customers",
        parse_term(r#"customers[ customer{id["c1"], name["Ann"]} ]"#).unwrap(),
    );
    engine
        .install_program(
            r#"RULE on_order
                 ON order{{ id[[var O]], customer[[var C]] }}
                 IF in "http://shop.example/customers" customer{{ id[[var C]], name[[var N]] }}
                 THEN SEND confirmation{order[var O], dear[var N]} TO "http://client.example"
               END"#,
        )
        .expect("rule program parses");

    let meta = MessageMeta::from_uri("http://client.example");
    let out = engine.receive(
        parse_term(r#"order{ id["o-1"], customer["c1"] }"#).unwrap(),
        &meta,
        Timestamp(1_000),
    );

    assert_eq!(engine.metrics.rules_fired, 1);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].to, "http://client.example");
    let payload = out[0].payload.to_string();
    assert!(
        payload.contains("confirmation"),
        "unexpected payload: {payload}"
    );
    assert!(payload.contains("Ann"), "binding did not flow: {payload}");

    // Events nobody subscribes to are observable as drops, not silence.
    assert_eq!(engine.metrics.events_unmatched, 0);
    let out = engine.receive(Term::elem("unsubscribed_label"), &meta, Timestamp(2_000));
    assert!(out.is_empty());
    assert_eq!(engine.metrics.events_unmatched, 1);
    assert_eq!(engine.metrics.events_received, 2);

    // The alpha network's work is observable: the matching event was
    // handed to exactly one rule, the unknown label to none, and
    // discrimination ran at least one test per event.
    assert_eq!(engine.metrics.rules_considered, 1);
    assert!(engine.metrics.alpha_tests_run >= 2);
}

/// The sharded front-end through the facade: batch ingestion over two
/// label groups, reactions and aggregated metrics (including the
/// unmatched-drop counter) exactly as a single engine would produce.
#[test]
fn sharded_engine_batch_through_facade() {
    let mut engine = ShardedEngine::new("http://shop.example", 4);
    engine
        .install_program(
            r#"RULE pay ON and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 1h
                 DO SEND paid{order[var O]} TO "http://client.example" END
               RULE greet ON hello{{name[[var N]]}}
                 DO SEND hi{name[var N]} TO "http://client.example" END"#,
        )
        .expect("sharded program parses");

    let meta = MessageMeta::from_uri("http://client.example");
    let out = engine.receive_batch(&[
        InMessage::new(
            parse_term(r#"order{ id["o-1"] }"#).unwrap(),
            meta.clone(),
            Timestamp(1_000),
        ),
        InMessage::new(
            parse_term(r#"hello{ name["Ann"] }"#).unwrap(),
            meta.clone(),
            Timestamp(2_000),
        ),
        InMessage::new(
            Term::elem("unsubscribed_label"),
            meta.clone(),
            Timestamp(2_500),
        ),
        InMessage::new(
            parse_term(r#"payment{ order["o-1"] }"#).unwrap(),
            meta,
            Timestamp(3_000),
        ),
    ]);

    let mut payloads: Vec<String> = out.iter().map(|o| o.payload.to_string()).collect();
    payloads.sort();
    assert_eq!(payloads, vec!["hi{name[\"Ann\"]}", "paid{order[\"o-1\"]}"]);

    let m = engine.metrics();
    assert_eq!(m.events_received, 4);
    assert_eq!(m.rules_fired, 2);
    assert_eq!(
        m.events_unmatched, 1,
        "the unknown label was dropped, and counted"
    );
    assert!(
        engine.hottest_share() < 1.0,
        "batch spread over more than one shard"
    );
}

/// The durability layer is reachable under its facade path, and the
/// README quickstart shape — open, install, receive, crash (drop),
/// recover, continue — works end to end, composite window included.
#[test]
fn durable_engine_through_facade() {
    use reweb::persist::SyncPolicy;
    use reweb::{DurableEngine, DurableOptions};

    let dir = std::env::temp_dir().join(format!("reweb-facade-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        sync: SyncPolicy::Os,
        snapshot_every: Some(2),
    };
    let build = || ReactiveEngine::new("http://shop");
    let meta = MessageMeta::from_uri("http://client");
    {
        let mut node = DurableEngine::open(&dir, opts, build).expect("create");
        assert!(!node.recovery().recovered);
        node.install_program(
            r#"RULE pay ON and(order{{id[[var O]]}}, payment{{order[[var O]]}}) within 2h
               DO SEND paid{order[var O]} TO "http://ship" END"#,
        )
        .expect("program");
        let out = node
            .receive(
                parse_term(r#"order{id["o1"]}"#).unwrap(),
                &meta,
                Timestamp(1_000),
            )
            .expect("receive");
        assert!(out.is_empty(), "half-open window: nothing fired yet");
    } // crash

    let mut node = DurableEngine::open(&dir, opts, build).expect("recover");
    assert!(node.recovery().recovered);
    let out = node
        .receive(
            parse_term(r#"payment{order["o1"]}"#).unwrap(),
            &meta,
            Timestamp(2_000),
        )
        .expect("receive");
    assert_eq!(out.len(), 1, "the pre-crash order completed the pair");
    assert_eq!(out[0].payload.to_string(), "paid{order[\"o1\"]}");
    let _ = std::fs::remove_dir_all(&dir);
}
