//! Integration of Theses 3 and 10 over the simulated Web: push and poll
//! observation of a changing resource, under both identity regimes, with
//! the observer being a full reactive engine.

use reweb::core::ReactiveEngine;
use reweb::term::{parse_term, Dur, IdentityMode, ResourceStore, Term, Timestamp};
use reweb::websim::{Poller, Simulation};

fn news(title: &str) -> Term {
    parse_term(&format!(r#"news[article{{@id="a1", title["{title}"]}}]"#)).unwrap()
}

fn watcher_engine() -> ReactiveEngine {
    let mut e = ReactiveEngine::new("http://watcher");
    e.install_program(
        r#"
        RULE on_modified
          ON changed{{kind[["modified"]], key[[var K]]}}
          DO PERSIST edit[var K] IN "http://watcher/edits"
        END
        RULE on_replaced
          ON changed{{kind[["deleted"]]}}
          DO PERSIST replacement IN "http://watcher/replacements"
        END
        "#,
    )
    .unwrap();
    e
}

#[test]
fn pushed_changes_trigger_watcher_rules_with_surrogate_identity() {
    let mut sim = Simulation::new(17);
    let mut store = ResourceStore::new();
    store.put("http://news/front", news("v0"));
    sim.add_store("http://news", store);
    sim.add_engine("http://watcher", watcher_engine());
    sim.subscribe_push(
        "http://news/front",
        "http://watcher",
        IdentityMode::surrogate(),
    );
    for k in 1..=3u64 {
        sim.schedule_update(
            "http://news/front",
            news(&format!("v{k}")),
            Timestamp(k * 1_000),
        );
    }
    sim.run_until(Timestamp(10_000));
    let w = sim.engine("http://watcher").unwrap();
    // Surrogate identity: each edit is a modification of article a1.
    let edits = w.qe.store.get("http://watcher/edits").unwrap();
    assert_eq!(edits.children().len(), 3);
    assert!(edits.to_string().contains("a1"));
    assert!(!w.qe.store.contains("http://watcher/replacements"));
}

#[test]
fn extensional_identity_reports_replacements_instead() {
    let mut sim = Simulation::new(17);
    let mut store = ResourceStore::new();
    store.put("http://news/front", news("v0"));
    sim.add_store("http://news", store);
    sim.add_engine("http://watcher", watcher_engine());
    sim.subscribe_push(
        "http://news/front",
        "http://watcher",
        IdentityMode::Extensional,
    );
    sim.schedule_update("http://news/front", news("v1"), Timestamp(1_000));
    sim.run_until(Timestamp(10_000));
    let w = sim.engine("http://watcher").unwrap();
    // The same edit now looks like delete+insert: identity was the value.
    assert!(!w.qe.store.contains("http://watcher/edits"));
    assert!(w.qe.store.contains("http://watcher/replacements"));
}

#[test]
fn polling_detects_the_same_changes_later_and_dearer() {
    let mut sim = Simulation::new(17);
    let mut store = ResourceStore::new();
    store.put("http://news/front", news("v0"));
    sim.add_store("http://news", store);
    sim.add_engine("http://watcher", watcher_engine());
    sim.add_poller(
        "http://poller",
        Poller::new(
            "http://news/front",
            Dur::secs(30),
            "http://watcher",
            IdentityMode::surrogate(),
        ),
    );
    sim.schedule_update("http://news/front", news("v1"), Timestamp(5_000));
    sim.run_until(Timestamp(120_000));
    let w = sim.engine("http://watcher").unwrap();
    let edits = w.qe.store.get("http://watcher/edits").unwrap();
    assert_eq!(
        edits.children().len(),
        1,
        "the change was seen exactly once"
    );
    // Four polls in two minutes, even though only one change happened.
    assert_eq!(sim.metrics.gets, 5);
}

#[test]
fn coalescing_two_updates_between_polls_yields_one_change() {
    let mut sim = Simulation::new(17);
    let mut store = ResourceStore::new();
    store.put("http://news/front", news("v0"));
    sim.add_store("http://news", store);
    sim.add_engine("http://watcher", watcher_engine());
    sim.add_poller(
        "http://poller",
        Poller::new(
            "http://news/front",
            Dur::secs(60),
            "http://watcher",
            IdentityMode::surrogate(),
        ),
    );
    // Two updates land within one polling interval.
    sim.schedule_update("http://news/front", news("v1"), Timestamp(5_000));
    sim.schedule_update("http://news/front", news("v2"), Timestamp(10_000));
    sim.run_until(Timestamp(70_000));
    let w = sim.engine("http://watcher").unwrap();
    // The poller can only see the net effect — push would have seen both.
    let edits = w.qe.store.get("http://watcher/edits").unwrap();
    assert_eq!(edits.children().len(), 1, "intermediate state was lost");
}
