//! Executable documentation: every fenced snippet in
//! `docs/OBSERVABILITY.md` is decoded by the decoder its fence tag
//! names — spans, histograms, provenance records, stats/trace bodies,
//! and the wire requests — so the observability reference cannot drift
//! from what the layer actually prints. The `explain()` rendering and
//! the stage table are checked against the enum as well.

use reweb::net::wire::Request;
use reweb::obs::{stats_histogram, Histogram, Provenance, Span, Stage};
use reweb::term::parse_term;

/// A fenced snippet: tag, body, and the line the fence opened on.
struct Snippet {
    tag: String,
    body: String,
    line: usize,
}

fn extract_snippets(doc: &str) -> Vec<Snippet> {
    let mut out = Vec::new();
    let mut current: Option<Snippet> = None;
    for (i, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("```") {
            match current.take() {
                Some(s) => out.push(s),
                None => {
                    current = Some(Snippet {
                        tag: rest.trim().to_string(),
                        body: String::new(),
                        line: i + 1,
                    })
                }
            }
        } else if let Some(s) = current.as_mut() {
            s.body.push_str(line);
            s.body.push('\n');
        }
    }
    assert!(current.is_none(), "unclosed code fence in OBSERVABILITY.md");
    out
}

/// Panic with the snippet's location.
fn fail<T>(s: &Snippet, what: &str) -> T {
    panic!(
        "docs/OBSERVABILITY.md:{} — `{}` snippet {what}:\n{}",
        s.line, s.tag, s.body
    )
}

#[test]
fn every_example_in_the_reference_decodes() {
    let doc = include_str!("../docs/OBSERVABILITY.md");
    let snippets = extract_snippets(doc);

    let mut checked = 0usize;
    for s in &snippets {
        let parse = |body: &str| {
            parse_term(body).unwrap_or_else(|e| fail(s, &format!("does not parse: {e}")))
        };
        match s.tag.as_str() {
            // Untagged/`text` fences are prose examples (e.g. the
            // rendered `explain()` line, checked separately below).
            "" | "text" => continue,
            "reweb-span" => {
                let span =
                    Span::from_term(&parse(&s.body)).unwrap_or_else(|| fail(s, "is not a span"));
                let back = Span::from_term(&span.to_term()).unwrap();
                assert_eq!(span, back, "span round-trip changed at line {}", s.line);
            }
            "reweb-hist" => {
                let h = Histogram::from_term(&parse(&s.body))
                    .unwrap_or_else(|| fail(s, "is not a histogram"));
                let back = Histogram::from_term(&h.to_term()).unwrap();
                assert_eq!(h, back, "histogram round-trip changed at line {}", s.line);
            }
            "reweb-provenance" => {
                let p = Provenance::from_term(&parse(&s.body))
                    .unwrap_or_else(|| fail(s, "is not a provenance record"));
                let back = Provenance::from_term(&p.to_term()).unwrap();
                assert_eq!(p, back, "provenance round-trip changed at line {}", s.line);
            }
            // A documented `stats` reply body: every one of the four
            // histograms must extract, exactly as a client would.
            "reweb-stats" => {
                let t = parse(&s.body);
                assert_eq!(t.label(), Some("stats"), "stats body label at {}", s.line);
                for name in ["batch", "fsync", "queue", "delivery"] {
                    stats_histogram(&t, name)
                        .unwrap_or_else(|| fail(s, &format!("lacks the `{name}` histogram")));
                }
            }
            // A documented `trace` reply body: every span child decodes
            // and agrees with the chain's trace id.
            "reweb-trace" => {
                let t = parse(&s.body);
                assert_eq!(t.label(), Some("trace"), "trace body label at {}", s.line);
                let spans: Vec<Span> = t
                    .children()
                    .iter()
                    .filter(|c| c.label() == Some("span"))
                    .map(|c| Span::from_term(c).unwrap_or_else(|| fail(s, "holds a bad span")))
                    .collect();
                assert!(!spans.is_empty(), "empty documented chain at {}", s.line);
                assert!(
                    spans.windows(2).all(|w| w[0].seq < w[1].seq),
                    "documented chain out of order at {}",
                    s.line
                );
            }
            "reweb-request" => {
                Request::from_term(&parse(&s.body))
                    .unwrap_or_else(|e| fail(s, &format!("is not a request: {e}")));
            }
            other => panic!(
                "docs/OBSERVABILITY.md:{} — unknown fence tag `{other}`; \
                 add a decoder arm here or retag the snippet",
                s.line
            ),
        }
        checked += 1;
    }
    assert!(
        checked >= 7,
        "expected at least 7 verified snippets, found {checked}"
    );
}

/// The stage table in §1 lists exactly the names `Stage::from_name`
/// accepts — complete in both directions, like the wire error
/// catalogue.
#[test]
fn stage_table_matches_the_enum() {
    let doc = include_str!("../docs/OBSERVABILITY.md");
    let mut documented = Vec::new();
    for line in doc.lines() {
        // Table rows look like: | `admission` | … |
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some(name) = rest.split('`').next() else {
            continue;
        };
        // `fsync`/`delivery` also label histogram rows in §2 — count
        // each stage name once.
        if let Some(stage) = Stage::from_name(name) {
            assert_eq!(stage.name(), name);
            if !documented.contains(&name.to_string()) {
                documented.push(name.to_string());
            }
        }
    }
    let all = [
        Stage::Admission,
        Stage::Alpha,
        Stage::Beta,
        Stage::Fire,
        Stage::Reaction,
        Stage::Outbox,
        Stage::Delivery,
        Stage::QueueWait,
        Stage::Fsync,
        Stage::Recovery,
        Stage::Other,
    ];
    for stage in all {
        assert!(
            documented.contains(&stage.name().to_string()),
            "stage `{}` is missing from the docs/OBSERVABILITY.md table",
            stage.name()
        );
    }
    assert_eq!(documented.len(), all.len(), "undocumented extra rows");
}

/// The rendered `explain()` line shown in §3 is exactly what the
/// documented provenance record renders to.
#[test]
fn documented_explain_line_is_live() {
    let doc = include_str!("../docs/OBSERVABILITY.md");
    let snippets = extract_snippets(doc);
    let prov = snippets
        .iter()
        .find(|s| s.tag == "reweb-provenance")
        .expect("a provenance snippet");
    let p = Provenance::from_term(&parse_term(&prov.body).unwrap()).unwrap();
    let rendered = p.explain();
    assert!(
        doc.contains(&rendered),
        "docs/OBSERVABILITY.md shows an explain() line, but not `{rendered}`"
    );
}
