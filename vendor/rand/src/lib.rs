//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable RNG
//! (`rngs::StdRng`), `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool`. The generator is SplitMix64 — statistically fine for
//! simulation jitter and workload generation, deterministic per seed,
//! and NOT cryptographically secure (neither is the real `StdRng` use
//! here: every call site passes a fixed seed for reproducibility).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding, as in `rand::SeedableRng` (only the `seed_from_u64` entry
/// point is provided — it is the only one the workspace calls).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    ///
    /// Panics on an empty range, like the real implementation.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Integer types uniformly samplable from a range.
///
/// Like the real crate, the `SampleRange` impls below are generic over
/// `T: SampleUniform` rather than written per concrete type — this is
/// what lets `rng.gen_range(50..150)` infer the integer type from the
/// surrounding expression instead of falling back to `i32`.
pub trait SampleUniform: Copy {
    fn sample_excl<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_incl<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_incl<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_incl(*self.start(), *self.end(), rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator under the real crate's name.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(50u64..150);
            assert!((50..150).contains(&x));
            let y = r.gen_range(0u64..=10);
            assert!(y <= 10);
            let z = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
