//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of Criterion its seven benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, `BenchmarkId::new`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Unlike the real crate this does no statistical analysis, outlier
//! rejection, or HTML reporting — it runs each benchmark closure
//! `sample_size` times after a short warm-up and prints the median
//! wall-clock time per iteration. That is enough for the relative
//! comparisons the E1–E12 experiment benches make (push vs poll,
//! incremental vs naive, …) while keeping `cargo bench` runnable
//! offline. Swap the `[workspace.dependencies]` entry back to the
//! registry version to regain full Criterion when networked.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const WARMUP_ITERS: u64 = 3;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark identifier by `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by `iter`.
    median_ns: u128,
}

impl Bencher {
    /// Times `f` over `samples` iterations (after a short warm-up) and
    /// records the median. The closure's return value is passed through
    /// `black_box` so the computation cannot be optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            std_black_box(f());
        }
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(f());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed iterations per benchmark (the real crate enforces
    /// a minimum of 10; so does this one).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample_size must be at least 10");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: 0,
        };
        f(&mut b);
        self.report(&id, b.median_ns);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: 0,
        };
        f(&mut b, input);
        self.report(&id, b.median_ns);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, median_ns: u128) {
        println!(
            "{}/{:<40} time: [{} median]",
            self.name,
            id,
            format_ns(median_ns)
        );
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }

    /// No-op hook kept for signature compatibility with `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        for n in [10u64, 20] {
            group.bench_with_input(BenchmarkId::new("param", n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
        }
        group.finish();
    }

    #[test]
    fn group_api_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
