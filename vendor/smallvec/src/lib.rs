//! Offline stand-in for the `smallvec` crate (API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `smallvec` it actually uses: a [`SmallVec<T, N>`]
//! that stores up to `N` elements inline (no heap allocation) and spills
//! to an ordinary `Vec<T>` beyond that. The const-generic form mirrors
//! `smallvec` 2.x (`SmallVec<T, N>` rather than 1.x's `SmallVec<[T; N]>`).
//!
//! Supported surface: construction ([`SmallVec::new`], [`From<Vec<T>>`],
//! [`FromIterator`], the [`smallvec!`] macro), slice access via
//! `Deref`/`DerefMut`, `push`/`pop`/`insert`/`remove`/`clear`/`truncate`,
//! owned and borrowed iteration, [`Extend`], and the comparison/hash/debug
//! traits forwarded to the slice form so a `SmallVec` is drop-in for the
//! `Vec` it replaces. Swap the `[workspace.dependencies]` entry back to
//! the registry version when networked.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline, spilling to the heap
/// beyond that.
///
/// ```
/// use smallvec::SmallVec;
/// let mut v: SmallVec<u32, 4> = SmallVec::new();
/// v.push(1);
/// v.push(2);
/// assert_eq!(&v[..], &[1, 2]);
/// assert!(!v.spilled());
/// v.extend([3, 4, 5]);
/// assert!(v.spilled());
/// assert_eq!(v.len(), 5);
/// ```
pub struct SmallVec<T, const N: usize> {
    repr: Repr<T, N>,
}

enum Repr<T, const N: usize> {
    /// `buf[..len]` is initialized.
    Inline {
        len: usize,
        buf: [MaybeUninit<T>; N],
    },
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// An empty vector (inline, no allocation).
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                // `MaybeUninit<T>` needs no initialization; an array of it
                // can be created uninitialized.
                buf: unsafe { MaybeUninit::<[MaybeUninit<T>; N]>::uninit().assume_init() },
            },
        }
    }

    /// An empty vector that can hold `cap` elements; allocates only when
    /// `cap` exceeds the inline capacity `N`.
    pub fn with_capacity(cap: usize) -> Self {
        if cap <= N {
            Self::new()
        } else {
            SmallVec {
                repr: Repr::Heap(Vec::with_capacity(cap)),
            }
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Is the vector empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Has the vector spilled its contents to the heap?
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Current capacity (inline `N` until spilled).
    pub fn capacity(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => N,
            Repr::Heap(v) => v.capacity(),
        }
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => {
                // SAFETY: buf[..len] is initialized by construction.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<T>(), *len) }
            }
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                // SAFETY: buf[..len] is initialized by construction.
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<T>(), *len) }
            }
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Move the inline contents onto the heap; no-op if already spilled.
    fn spill(&mut self) {
        if let Repr::Inline { len, buf } = &mut self.repr {
            let n = *len;
            let mut v = Vec::with_capacity((N.max(1)) * 2);
            for slot in buf.iter_mut().take(n) {
                // SAFETY: the first n slots are initialized; reading them
                // out transfers ownership, and setting len = 0 below keeps
                // the old repr from dropping them again.
                v.push(unsafe { slot.as_ptr().read() });
            }
            *len = 0;
            self.repr = Repr::Heap(v);
        }
    }

    /// Append an element, spilling to the heap when inline space runs out.
    pub fn push(&mut self, value: T) {
        if let Repr::Inline { len, buf } = &mut self.repr {
            if *len < N {
                buf[*len].write(value);
                *len += 1;
                return;
            }
            self.spill();
        }
        match &mut self.repr {
            Repr::Heap(v) => v.push(value),
            Repr::Inline { .. } => unreachable!("push after spill"),
        }
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    return None;
                }
                *len -= 1;
                // SAFETY: slot *len was initialized and is now out of the
                // live prefix, so ownership moves to the caller.
                Some(unsafe { buf[*len].as_ptr().read() })
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Insert `value` before position `idx`, shifting the tail right.
    ///
    /// # Panics
    /// Panics if `idx > len`.
    pub fn insert(&mut self, idx: usize, value: T) {
        let n = self.len();
        assert!(
            idx <= n,
            "insertion index (is {idx}) should be <= len (is {n})"
        );
        if let Repr::Inline { len, .. } = &self.repr {
            if *len == N {
                self.spill();
            }
        }
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                // SAFETY: len < N (spilled above otherwise); shift the
                // initialized tail [idx, len) one slot right, then write
                // into the vacated slot.
                unsafe {
                    let p = buf.as_mut_ptr().cast::<T>();
                    std::ptr::copy(p.add(idx), p.add(idx + 1), *len - idx);
                    std::ptr::write(p.add(idx), value);
                }
                *len += 1;
            }
            Repr::Heap(v) => v.insert(idx, value),
        }
    }

    /// Remove and return the element at `idx`, shifting the tail left.
    ///
    /// # Panics
    /// Panics if `idx >= len`.
    pub fn remove(&mut self, idx: usize) -> T {
        let n = self.len();
        assert!(idx < n, "removal index (is {idx}) should be < len (is {n})");
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                // SAFETY: idx < len, so the slot is initialized; after the
                // read, the tail shifts left to close the gap.
                unsafe {
                    let p = buf.as_mut_ptr().cast::<T>();
                    let out = std::ptr::read(p.add(idx));
                    std::ptr::copy(p.add(idx + 1), p.add(idx), *len - idx - 1);
                    *len -= 1;
                    out
                }
            }
            Repr::Heap(v) => v.remove(idx),
        }
    }

    /// Drop all elements; keeps the current representation's storage.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// Drop elements past `new_len`; no-op if already that short.
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                while *len > new_len {
                    *len -= 1;
                    // SAFETY: slot *len was initialized; drop it in place.
                    unsafe { buf[*len].as_mut_ptr().drop_in_place() };
                }
            }
            Repr::Heap(v) => v.truncate(new_len),
        }
    }

    /// Convert into a plain `Vec`, reusing the heap allocation if spilled.
    pub fn into_vec(mut self) -> Vec<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len;
                let mut v = Vec::with_capacity(n);
                for slot in buf.iter_mut().take(n) {
                    // SAFETY: initialized prefix; len = 0 prevents double drop.
                    v.push(unsafe { slot.as_ptr().read() });
                }
                *len = 0;
                v
            }
            Repr::Heap(v) => std::mem::take(v),
        }
    }
}

impl<T, const N: usize> Drop for SmallVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.as_slice().iter().cloned().collect()
    }
}

impl<T, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> Self {
        if v.len() <= N {
            let mut out = Self::new();
            out.extend(v);
            out
        } else {
            SmallVec {
                repr: Repr::Heap(v),
            }
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = Self::new();
        out.extend(iter);
        out
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for SmallVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for SmallVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialOrd, const N: usize> PartialOrd for SmallVec<T, N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Ord, const N: usize> Ord for SmallVec<T, N> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a mut SmallVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(mut self) -> IntoIter<T, N> {
        // Steal the repr; replace with an empty one so Drop on `self`
        // finds nothing to free.
        let repr = std::mem::replace(
            &mut self.repr,
            Repr::Inline {
                len: 0,
                buf: unsafe { MaybeUninit::<[MaybeUninit<T>; N]>::uninit().assume_init() },
            },
        );
        match repr {
            Repr::Inline { len, buf } => IntoIter {
                repr: IterRepr::Inline { buf, next: 0, len },
            },
            Repr::Heap(v) => IntoIter {
                repr: IterRepr::Heap(v.into_iter()),
            },
        }
    }
}

/// Owning iterator returned by [`SmallVec::into_iter`].
pub struct IntoIter<T, const N: usize> {
    repr: IterRepr<T, N>,
}

enum IterRepr<T, const N: usize> {
    /// `buf[next..len]` remains initialized and unyielded.
    Inline {
        buf: [MaybeUninit<T>; N],
        next: usize,
        len: usize,
    },
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match &mut self.repr {
            IterRepr::Inline { buf, next, len } => {
                if next == len {
                    return None;
                }
                // SAFETY: slots [next, len) are initialized; this moves
                // slot *next out and advances past it.
                let out = unsafe { buf[*next].as_ptr().read() };
                *next += 1;
                Some(out)
            }
            IterRepr::Heap(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.repr {
            IterRepr::Inline { next, len, .. } => len - next,
            IterRepr::Heap(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> Drop for IntoIter<T, N> {
    fn drop(&mut self) {
        if let IterRepr::Inline { buf, next, len } = &mut self.repr {
            // Drop the unyielded tail.
            while next < len {
                // SAFETY: slots [next, len) are initialized.
                unsafe { buf[*next].as_mut_ptr().drop_in_place() };
                *next += 1;
            }
        }
    }
}

/// `smallvec![a, b, c]` — like `vec!`, but producing a [`SmallVec`].
#[macro_export]
macro_rules! smallvec {
    () => { $crate::SmallVec::new() };
    ($($x:expr),+ $(,)?) => {{
        let mut v = $crate::SmallVec::new();
        $( v.push($x); )+
        v
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
            assert!(!v.spilled());
        }
        v.push(4);
        assert!(v.spilled());
        assert_eq!(&v[..], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn insert_remove_shift_correctly() {
        let mut v: SmallVec<u32, 4> = SmallVec::from(vec![1, 3, 4]);
        v.insert(1, 2);
        assert_eq!(&v[..], &[1, 2, 3, 4]);
        v.insert(4, 5); // forces a spill at capacity
        assert_eq!(&v[..], &[1, 2, 3, 4, 5]);
        assert_eq!(v.remove(0), 1);
        assert_eq!(&v[..], &[2, 3, 4, 5]);
        assert_eq!(v.pop(), Some(5));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn drops_exactly_once() {
        let token = Rc::new(());
        {
            let mut v: SmallVec<Rc<()>, 2> = SmallVec::new();
            for _ in 0..5 {
                v.push(token.clone());
            }
            let _ = v.remove(1);
            let mut it = v.into_iter();
            let _ = it.next(); // yield one, drop the iterator with a tail left
        }
        assert_eq!(
            Rc::strong_count(&token),
            1,
            "every clone dropped exactly once"
        );
    }

    #[test]
    fn eq_ord_hash_match_slices() {
        let a: SmallVec<u32, 4> = SmallVec::from(vec![1, 2, 3]);
        let b: SmallVec<u32, 4> = vec![1, 2, 3].into_iter().collect();
        let c: SmallVec<u32, 4> = SmallVec::from(vec![1, 2, 3, 4, 5]); // spilled
        assert_eq!(a, b);
        assert!(a < c);
        assert_eq!(a.as_slice(), [1, 2, 3]);
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &SmallVec<u32, 4>| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn macro_and_conversions() {
        let v: SmallVec<&str, 4> = smallvec!["a", "b"];
        assert_eq!(v.len(), 2);
        let back: Vec<&str> = v.into_vec();
        assert_eq!(back, vec!["a", "b"]);
        let big: SmallVec<u8, 2> = SmallVec::from(vec![1, 2, 3, 4]);
        assert!(big.spilled());
        assert_eq!(big.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut v: SmallVec<u32, 4> = smallvec![3, 1, 2];
        v.sort();
        assert_eq!(&v[..], &[1, 2, 3]);
        v[0] = 9;
        assert_eq!(v[0], 9);
        v.clear();
        assert!(v.is_empty());
        assert!(!v.spilled());
    }
}
