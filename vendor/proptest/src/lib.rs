//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its property suites actually use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * [`Just`], integer-range strategies, tuple strategies (arity 2–6),
//!   `&str`-as-regex strategies, [`any`]`::<T>()`;
//! * [`collection::vec`], [`collection::btree_map`], [`option::of`],
//!   [`string::string_regex`] (a regex *subset*: char classes, ranges,
//!   escapes, `{n}`/`{n,m}`/`?`/`*`/`+` repetition — exactly what the
//!   suites' patterns need);
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] macros and
//!   [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the assert
//!   message) but is not minimized.
//! * **Deterministic seeding.** Each test's RNG is seeded from the hash
//!   of its module path and name, so runs are reproducible and CI-stable;
//!   there is no failure-persistence file.
//!
//! Swap the `[workspace.dependencies]` entry back to the registry version
//! to regain full proptest when networked.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used by all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's fully qualified name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        self.below(den as u64) < num as u64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces one concrete value per call.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self::Value, O>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self.boxed(),
            f: Rc::new(f),
        }
    }

    /// Recursive strategies: `depth` levels of branching via `f`, with
    /// `self` as the leaf generator. The `_desired_size` and
    /// `_expected_branch_size` tuning knobs of real proptest are accepted
    /// and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            depth,
            f: Rc::new(move |inner| f(inner).boxed()),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<T, O> {
    inner: BoxedStrategy<T>,
    f: Rc<dyn Fn(T) -> O>,
}

impl<T, O> Clone for Map<T, O> {
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: Rc::clone(&self.f),
        }
    }
}

impl<T, O> Strategy for Map<T, O> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    depth: u32,
    f: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth,
            f: Rc::clone(&self.f),
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Always a leaf once the depth budget is spent; otherwise branch
        // two times out of three so generated shapes mix shallow and deep.
        if self.depth == 0 || rng.ratio(1, 3) {
            return self.leaf.generate(rng);
        }
        let inner = Recursive {
            leaf: self.leaf.clone(),
            depth: self.depth - 1,
            f: Rc::clone(&self.f),
        }
        .boxed();
        (self.f)(inner).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident / $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A `&str` is a strategy generating strings matching it as a regex
/// (subset — see [`string::string_regex`]). Panics on an unsupported
/// pattern, mirroring real proptest's panic on an invalid regex.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// Weighted choice among strategies of a common value type.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut x = rng.below(self.total);
        for (w, s) in &self.arms {
            if x < *w as u64 {
                return s.generate(rng);
            }
            x -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Backing function for the [`prop_oneof!`] macro.
pub fn one_of<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    OneOf { arms, total }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized + 'static {
    fn arbitrary_strategy() -> BoxedStrategy<Self>;
}

struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary_strategy()
}

impl Arbitrary for bool {
    fn arbitrary_strategy() -> BoxedStrategy<bool> {
        FnStrategy(|rng: &mut TestRng| rng.next_u64() & 1 == 1).boxed()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_strategy() -> BoxedStrategy<$t> {
                FnStrategy(|rng: &mut TestRng| rng.next_u64() as $t).boxed()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary_strategy() -> BoxedStrategy<char> {
        // Printable ASCII keeps generated text parseable and readable.
        FnStrategy(|rng: &mut TestRng| (b' ' + rng.below(95) as u8) as char).boxed()
    }
}

// ---------------------------------------------------------------------------
// collection / option / string modules
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    pub struct VecStrategy<T> {
        elem: BoxedStrategy<T>,
        size: Range<usize>,
    }

    impl<T> Clone for VecStrategy<T> {
        fn clone(&self) -> Self {
            VecStrategy {
                elem: self.elem.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<T> Strategy for VecStrategy<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec<T>` with a length drawn uniformly from `size`.
    pub fn vec<S>(elem: S, size: Range<usize>) -> VecStrategy<S::Value>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy {
            elem: elem.boxed(),
            size,
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: BoxedStrategy<K>,
        vals: BoxedStrategy<V>,
        size: Range<usize>,
    }

    impl<K, V> Clone for BTreeMapStrategy<K, V> {
        fn clone(&self) -> Self {
            BTreeMapStrategy {
                keys: self.keys.clone(),
                vals: self.vals.clone(),
                size: self.size.clone(),
            }
        }
    }

    impl<K: Ord, V> Strategy for BTreeMapStrategy<K, V> {
        type Value = BTreeMap<K, V>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K, V> {
            let target = self.size.clone().generate(rng);
            let mut map = BTreeMap::new();
            // Key collisions may keep the map below target; bound the
            // attempts so tiny key spaces cannot loop forever.
            let mut attempts = 0;
            while map.len() < target && attempts < 10 * target + 20 {
                map.insert(self.keys.generate(rng), self.vals.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    /// `BTreeMap<K, V>` with a size drawn uniformly from `size`
    /// (best-effort under key collisions).
    pub fn btree_map<KS, VS>(
        keys: KS,
        vals: VS,
        size: Range<usize>,
    ) -> BTreeMapStrategy<KS::Value, VS::Value>
    where
        KS: Strategy + 'static,
        KS::Value: Ord + 'static,
        VS: Strategy + 'static,
        VS::Value: 'static,
    {
        assert!(
            size.start < size.end,
            "collection::btree_map: empty size range"
        );
        BTreeMapStrategy {
            keys: keys.boxed(),
            vals: vals.boxed(),
            size,
        }
    }
}

pub mod option {
    use super::*;

    pub struct OptionStrategy<T> {
        inner: BoxedStrategy<T>,
    }

    impl<T> Clone for OptionStrategy<T> {
        fn clone(&self) -> Self {
            OptionStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Strategy for OptionStrategy<T> {
        type Value = Option<T>;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            if rng.ratio(1, 4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S>(inner: S) -> OptionStrategy<S::Value>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        OptionStrategy {
            inner: inner.boxed(),
        }
    }
}

pub mod string {
    use super::*;

    /// One regex atom with its repetition bounds (`max` inclusive).
    #[derive(Clone, Debug)]
    struct Part {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Strategy generating strings matching a (subset) regex.
    #[derive(Clone, Debug)]
    pub struct RegexGeneratorStrategy {
        parts: Vec<Part>,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for part in &self.parts {
                let span = (part.max - part.min + 1) as u64;
                let n = part.min + rng.below(span) as usize;
                for _ in 0..n {
                    out.push(part.chars[rng.below(part.chars.len() as u64) as usize]);
                }
            }
            out
        }
    }

    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    fn err<T>(msg: impl Into<String>) -> Result<T, Error> {
        Err(Error(msg.into()))
    }

    /// Parse a regex *subset* into a generator: sequences of literal
    /// chars, `\`-escapes, `.`, and `[...]` classes (with ranges and
    /// escapes), each optionally followed by `{n}`, `{n,m}`, `?`, `*`
    /// or `+`. Anchors, groups, and alternation are not supported.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let cs: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut parts = Vec::new();
        while i < cs.len() {
            let chars: Vec<char> = match cs[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < cs.len() && cs[i] != ']' {
                        let lo = if cs[i] == '\\' {
                            i += 1;
                            if i >= cs.len() {
                                return err("dangling escape in class");
                            }
                            unescape(cs[i])
                        } else {
                            cs[i]
                        };
                        if i + 2 < cs.len() && cs[i + 1] == '-' && cs[i + 2] != ']' {
                            let hi = cs[i + 2];
                            if hi < lo {
                                return err(format!("inverted range {lo}-{hi}"));
                            }
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(lo);
                            i += 1;
                        }
                    }
                    if i >= cs.len() {
                        return err("unclosed character class");
                    }
                    i += 1; // consume ']'
                    if set.is_empty() {
                        return err("empty character class");
                    }
                    set
                }
                '\\' => {
                    i += 1;
                    if i >= cs.len() {
                        return err("dangling escape");
                    }
                    let c = unescape(cs[i]);
                    i += 1;
                    vec![c]
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                c @ ('(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^' | '$') => {
                    return err(format!("unsupported regex construct {c:?}"));
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < cs.len() {
                match cs[i] {
                    '{' => {
                        let close = match cs[i..].iter().position(|&c| c == '}') {
                            Some(off) => i + off,
                            None => return err("unclosed repetition"),
                        };
                        let body: String = cs[i + 1..close].iter().collect();
                        i = close + 1;
                        let (lo, hi) = match body.split_once(',') {
                            Some((a, b)) => (a.trim().to_string(), b.trim().to_string()),
                            None => (body.trim().to_string(), body.trim().to_string()),
                        };
                        let lo: usize = match lo.parse() {
                            Ok(n) => n,
                            Err(_) => return err(format!("bad repetition bound {lo:?}")),
                        };
                        let hi: usize = match hi.parse() {
                            Ok(n) => n,
                            Err(_) => return err(format!("bad repetition bound {hi:?}")),
                        };
                        if hi < lo {
                            return err("inverted repetition bounds");
                        }
                        (lo, hi)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            parts.push(Part { chars, min, max });
        }
        Ok(RegexGeneratorStrategy { parts })
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// The proptest entry point: a block of `#[test]` functions whose
/// arguments are drawn from strategies. Each function reruns its body
/// for `cases` deterministic inputs; failures surface as ordinary
/// assertion panics (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn rng() -> TestRng {
        TestRng::from_name("proptest::self_test")
    }

    #[test]
    fn regex_subset_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = crate::string::string_regex("[a-c][a-z]{0,2}")
                .unwrap()
                .generate(&mut r);
            assert!((1..=3).contains(&s.len()), "bad len: {s:?}");
            assert!(('a'..='c').contains(&s.chars().next().unwrap()));
            let t = crate::string::string_regex("[ -~]{0,12}")
                .unwrap()
                .generate(&mut r);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            let u = crate::string::string_regex("[a-z][a-z0-9_]{0,6}")
                .unwrap()
                .generate(&mut r);
            assert!((1..=7).contains(&u.len()));
        }
    }

    #[test]
    fn unsupported_regex_is_an_error() {
        assert!(crate::string::string_regex("(a|b)+").is_err());
        assert!(crate::string::string_regex("[z-a]").is_err());
        assert!(crate::string::string_regex("[").is_err());
    }

    #[test]
    fn recursive_terminates_and_varies() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 100, "leaf out of strategy range");
                    0
                }
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0..100u32)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 20, 3, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = strat.generate(&mut r);
            assert!(depth(&t) <= 4, "depth budget exceeded: {t:?}");
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth >= 2, "recursion never branched deep");
    }

    #[test]
    fn oneof_honors_weights() {
        let strat = prop_oneof![
            4 => Just("heavy"),
            1 => Just("light"),
        ];
        let mut r = rng();
        let heavy = (0..1000)
            .filter(|_| strat.generate(&mut r) == "heavy")
            .count();
        assert!((650..950).contains(&heavy), "weighting off: {heavy}/1000");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: multiple args, tuples, collections, options.
        #[test]
        fn macro_end_to_end(
            v in crate::collection::vec((0..10u8, any::<bool>()), 0..5),
            m in crate::collection::btree_map("[a-c]", 0..9u32, 0..3),
            o in crate::option::of(Just(7u8)),
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(m.len() < 3);
            if let Some(x) = o {
                prop_assert_eq!(x, 7);
            }
        }
    }
}
